package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"
)

// postJSON posts body to url and decodes the JSON response into out.
// A 429 is retried up to retries times, honoring the server's
// Retry-After header (capped so a misbehaving server cannot park the
// CLI); with retries=0 the 429 surfaces immediately, preserving the
// old behavior. With verbose, each attempt's status and the router's
// X-QAV-Replica attribution header go to stderr.
func postJSON(ctx context.Context, url string, body, out any, retries int, verbose bool) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	const maxRetryAfter = 30 * time.Second
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		data, readErr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if verbose {
			replica := resp.Header.Get("X-QAV-Replica")
			if replica == "" {
				replica = "-"
			}
			fmt.Fprintf(os.Stderr, "qavcli: %s -> %s (replica %s)\n", url, resp.Status, replica)
		}
		if readErr != nil {
			return readErr
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < retries {
			wait := time.Second
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				wait = time.Duration(secs) * time.Second
			}
			if wait > maxRetryAfter {
				wait = maxRetryAfter
			}
			if verbose {
				fmt.Fprintf(os.Stderr, "qavcli: saturated, retrying in %v (%d/%d)\n", wait, attempt+1, retries)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var errBody struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(data, &errBody) == nil && errBody.Error != "" {
				return fmt.Errorf("server: %s (HTTP %d)", errBody.Error, resp.StatusCode)
			}
			return fmt.Errorf("server: HTTP %d", resp.StatusCode)
		}
		return json.Unmarshal(data, out)
	}
}

// remoteRewrite sends the rewrite to a qavd or qavrouter endpoint and
// prints the response in the same format as the local path.
func remoteRewrite(ctx context.Context, server, qExpr, vExpr, schemaFile string, recursive bool, retries int, verbose bool) error {
	var schemaText string
	if schemaFile != "" {
		src, err := os.ReadFile(schemaFile)
		if err != nil {
			return err
		}
		schemaText = string(src)
	}
	reqBody := map[string]any{"query": qExpr, "view": vExpr}
	if schemaText != "" {
		reqBody["schema"] = schemaText
	}
	if recursive {
		reqBody["recursive"] = true
	}
	var res struct {
		Answerable bool   `json:"answerable"`
		Union      string `json:"union"`
		CRs        []struct {
			Rewriting    string `json:"rewriting"`
			Compensation string `json:"compensation"`
		} `json:"crs"`
		Partial       bool   `json:"partial"`
		PartialReason string `json:"partialReason"`
	}
	if err := postJSON(ctx, server+"/v1/rewrite", reqBody, &res, retries, verbose); err != nil {
		return err
	}
	if !res.Answerable {
		if res.Partial {
			fmt.Printf("PARTIAL (%s): generation stopped before finding any contained rewriting\n", res.PartialReason)
			return nil
		}
		fmt.Println("not answerable: no contained rewriting exists")
		return nil
	}
	if res.Partial {
		fmt.Printf("PARTIAL (%s): sound but possibly non-maximal rewriting (%d CR(s)):\n", res.PartialReason, len(res.CRs))
	} else {
		fmt.Printf("maximal contained rewriting (%d CR(s)):\n", len(res.CRs))
	}
	for _, cr := range res.CRs {
		fmt.Printf("  %-50s compensation: %s\n", cr.Rewriting, cr.Compensation)
	}
	return nil
}
