// Command qavcli is the command-line front end to the QAV engine:
// rewriting tree pattern queries using views, evaluating them over XML
// documents, deciding containment, and inspecting schema constraints
// and chased views.
//
// Usage:
//
//	qavcli rewrite -q XPATH -v XPATH [-schema FILE] [-recursive] [-server URL [-retries N] [-verbose]]
//	qavcli answer  -q XPATH -v XPATH -doc FILE [-schema FILE] [-backend B]
//	qavcli eval    -q XPATH -doc FILE
//	qavcli contain -p XPATH -q XPATH [-schema FILE]
//	qavcli constraints -schema FILE
//	qavcli chase   -v XPATH -schema FILE [-q XPATH]
//	qavcli ship    -v XPATH -doc FILE [-o FILE]
//	qavcli mediate -q XPATH -view FILE [-backend B]
//	qavcli select  -workload FILE -k N
//
// All rewriting-pipeline commands route through internal/engine, the
// same pipeline the HTTP server runs, and honor Ctrl-C: an interrupted
// exponential enumeration stops promptly via context cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"qav"
	"qav/internal/engine"
	"qav/internal/plan"
	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/tpq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// Ctrl-C cancels the pipeline context: exponential enumerations
	// stop promptly instead of burning the whole embedding budget.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	eng := engine.New(engine.Config{})

	var err error
	switch os.Args[1] {
	case "rewrite":
		err = cmdRewrite(ctx, eng, os.Args[2:])
	case "answer":
		err = cmdAnswer(ctx, eng, os.Args[2:])
	case "eval":
		err = cmdEval(ctx, os.Args[2:])
	case "contain":
		err = cmdContain(ctx, eng, os.Args[2:])
	case "constraints":
		err = cmdConstraints(eng, os.Args[2:])
	case "chase":
		err = cmdChase(ctx, eng, os.Args[2:])
	case "ship":
		err = cmdShip(os.Args[2:])
	case "mediate":
		err = cmdMediate(ctx, eng, os.Args[2:])
	case "select":
		err = cmdSelect(ctx, os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "qavcli: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "qavcli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: qavcli <rewrite|answer|eval|contain|constraints|chase|ship|mediate|select> [flags]
run "qavcli <command> -h" for command flags`)
	os.Exit(2)
}

func loadSchema(path string) (*schema.Graph, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return schema.Parse(string(src))
}

func loadDoc(path string) (*qav.Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qav.ParseDocument(f)
}

func cmdRewrite(ctx context.Context, eng *engine.Engine, args []string) error {
	fs := flag.NewFlagSet("rewrite", flag.ExitOnError)
	qExpr := fs.String("q", "", "query (XPath in XP{/,//,[]})")
	vExpr := fs.String("v", "", "view (XPath in XP{/,//,[]})")
	schemaFile := fs.String("schema", "", "optional schema file")
	recursive := fs.Bool("recursive", false, "use the recursive-schema algorithm")
	explain := fs.Bool("explain", false, "print the embedding derivation of each CR")
	server := fs.String("server", "", "rewrite via a qavd/qavrouter endpoint (base URL) instead of in-process")
	retries := fs.Int("retries", 0, "with -server: bounded retries on 429, honoring Retry-After")
	verbose := fs.Bool("verbose", false, "with -server: print per-attempt status and X-QAV-Replica attribution")
	fs.Parse(args)
	if *qExpr == "" || *vExpr == "" {
		return fmt.Errorf("-q and -v are required")
	}
	if *server != "" {
		return remoteRewrite(ctx, *server, *qExpr, *vExpr, *schemaFile, *recursive, *retries, *verbose)
	}
	q, err := qav.ParseQuery(*qExpr)
	if err != nil {
		return err
	}
	v, err := qav.ParseQuery(*vExpr)
	if err != nil {
		return err
	}
	var g *schema.Graph
	if *schemaFile != "" {
		if g, err = loadSchema(*schemaFile); err != nil {
			return err
		}
	}
	res, err := eng.Rewrite(ctx, engine.Request{Query: q, View: v, Schema: g, Recursive: *recursive})
	if err != nil {
		return err
	}
	if res.Union.Empty() {
		if res.Partial {
			fmt.Printf("PARTIAL (%s): generation stopped before finding any contained rewriting\n", res.PartialReason)
			return nil
		}
		fmt.Println("not answerable: no contained rewriting exists")
		return nil
	}
	if res.Partial {
		fmt.Printf("PARTIAL (%s): sound but possibly non-maximal rewriting (%d CR(s)):\n", res.PartialReason, len(res.CRs))
	} else {
		fmt.Printf("maximal contained rewriting (%d CR(s)):\n", len(res.CRs))
	}
	for _, cr := range res.CRs {
		fmt.Printf("  %-50s compensation: %s\n", cr.Rewriting, cr.Compensation)
	}
	if *explain {
		fmt.Println()
		fmt.Print(rewrite.Explain(q, v, res))
	}
	return nil
}

func cmdAnswer(ctx context.Context, eng *engine.Engine, args []string) error {
	fs := flag.NewFlagSet("answer", flag.ExitOnError)
	qExpr := fs.String("q", "", "query")
	vExpr := fs.String("v", "", "view")
	docFile := fs.String("doc", "", "XML document")
	schemaFile := fs.String("schema", "", "optional schema file")
	backend := fs.String("backend", "auto", "plan backend: auto, structjoin, treedp or stream")
	fs.Parse(args)
	if *qExpr == "" || *vExpr == "" || *docFile == "" {
		return fmt.Errorf("-q, -v and -doc are required")
	}
	be, err := plan.ParseBackend(*backend)
	if err != nil {
		return err
	}
	q, err := qav.ParseQuery(*qExpr)
	if err != nil {
		return err
	}
	v, err := qav.ParseQuery(*vExpr)
	if err != nil {
		return err
	}
	d, err := loadDoc(*docFile)
	if err != nil {
		return err
	}
	var g *schema.Graph
	if *schemaFile != "" {
		if g, err = loadSchema(*schemaFile); err != nil {
			return err
		}
		if err := g.ValidateDocument(d); err != nil {
			fmt.Fprintln(os.Stderr, "warning: document does not conform to schema:", err)
		}
	}
	ans, err := eng.AnswerDoc(ctx, engine.Request{Query: q, View: v, Schema: g, PlanBackend: be}, d)
	if errors.Is(err, engine.ErrNotAnswerable) {
		return fmt.Errorf("query is not answerable using the view")
	}
	if err != nil {
		return err
	}
	if ans.Result.Partial {
		fmt.Printf("PARTIAL (%s): answers come from a sound but possibly non-maximal rewriting\n", ans.Result.PartialReason)
	}
	fmt.Printf("materialized view: %d nodes\n", len(ans.ViewNodes))
	printPlan(ans.Plan, ans.Exec)
	fmt.Printf("answers via view (%d):\n", len(ans.Answers))
	for _, n := range ans.Answers {
		printAnswer(n)
	}
	fmt.Printf("direct evaluation of the query finds %d answers\n", len(ans.Direct))
	return nil
}

// printPlan summarizes the compiled answer plan: program count and the
// backend that executed each program.
func printPlan(pl *plan.Plan, exec *plan.ExecResult) {
	if pl == nil {
		return
	}
	parts := make([]string, len(exec.Backends))
	for i, b := range exec.Backends {
		parts[i] = b.String()
	}
	fmt.Printf("plan: %d program(s), backends [%s]\n", pl.Programs(), strings.Join(parts, " "))
}

func cmdEval(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	qExpr := fs.String("q", "", "query")
	docFile := fs.String("doc", "", "XML document")
	streaming := fs.Bool("stream", false, "evaluate in one SAX pass without loading the document")
	fs.Parse(args)
	if *qExpr == "" || *docFile == "" {
		return fmt.Errorf("-q and -doc are required")
	}
	q, err := qav.ParseQuery(*qExpr)
	if err != nil {
		return err
	}
	if *streaming {
		f, err := os.Open(*docFile)
		if err != nil {
			return err
		}
		defer f.Close()
		answers, err := qav.EvaluateStream(ctx, f, q)
		if err != nil {
			return err
		}
		fmt.Printf("%d answer(s):\n", len(answers))
		for _, a := range answers {
			if a.Text != "" {
				fmt.Printf("  %s  %q\n", a.Path, a.Text)
			} else {
				fmt.Printf("  %s\n", a.Path)
			}
		}
		return nil
	}
	d, err := loadDoc(*docFile)
	if err != nil {
		return err
	}
	answers := q.Evaluate(d)
	fmt.Printf("%d answer(s):\n", len(answers))
	for _, n := range answers {
		printAnswer(n)
	}
	return nil
}

func printAnswer(n *qav.Node) {
	if n.Text != "" {
		fmt.Printf("  %s  %q\n", n.Path(), n.Text)
	} else {
		fmt.Printf("  %s\n", n.Path())
	}
}

func cmdContain(ctx context.Context, eng *engine.Engine, args []string) error {
	fs := flag.NewFlagSet("contain", flag.ExitOnError)
	pExpr := fs.String("p", "", "candidate contained query")
	qExpr := fs.String("q", "", "containing query")
	schemaFile := fs.String("schema", "", "optional schema file")
	fs.Parse(args)
	if *pExpr == "" || *qExpr == "" {
		return fmt.Errorf("-p and -q are required")
	}
	p, err := qav.ParseQuery(*pExpr)
	if err != nil {
		return err
	}
	q, err := qav.ParseQuery(*qExpr)
	if err != nil {
		return err
	}
	var g *schema.Graph
	if *schemaFile != "" {
		if g, err = loadSchema(*schemaFile); err != nil {
			return err
		}
	}
	pInQ, qInP, err := eng.Contain(ctx, p, q, g)
	if err != nil {
		return err
	}
	rel := "⊆"
	if g != nil {
		rel = "⊆_S"
	}
	fmt.Printf("%s %s %s : %v\n", p, rel, q, pInQ)
	fmt.Printf("%s %s %s : %v\n", q, rel, p, qInP)
	return nil
}

func cmdConstraints(eng *engine.Engine, args []string) error {
	fs := flag.NewFlagSet("constraints", flag.ExitOnError)
	schemaFile := fs.String("schema", "", "schema file")
	fs.Parse(args)
	if *schemaFile == "" {
		return fmt.Errorf("-schema is required")
	}
	s, err := loadSchema(*schemaFile)
	if err != nil {
		return err
	}
	sigma := eng.Constraints(s)
	fmt.Printf("%d constraint(s) implied by the schema:\n%s\n", sigma.Len(), sigma)
	return nil
}

func cmdChase(ctx context.Context, eng *engine.Engine, args []string) error {
	fs := flag.NewFlagSet("chase", flag.ExitOnError)
	vExpr := fs.String("v", "", "view to chase")
	qExpr := fs.String("q", "", "query guiding the intelligent chase (omit for exhaustive)")
	schemaFile := fs.String("schema", "", "schema file")
	fs.Parse(args)
	if *vExpr == "" || *schemaFile == "" {
		return fmt.Errorf("-v and -schema are required")
	}
	v, err := tpq.Parse(*vExpr)
	if err != nil {
		return err
	}
	s, err := loadSchema(*schemaFile)
	if err != nil {
		return err
	}
	var q *tpq.Pattern
	if *qExpr != "" {
		if q, err = tpq.Parse(*qExpr); err != nil {
			return err
		}
	}
	out, err := eng.Chase(ctx, v, q, s)
	if err != nil {
		return err
	}
	kind := "exhaustive"
	if q != nil {
		kind = "intelligent"
	}
	fmt.Printf("%s chase (%d nodes): %s\n", kind, out.Size(), out)
	return nil
}

// cmdShip materializes a view over a source document and serializes the
// result forest — the artifact an autonomous source exports.
func cmdShip(args []string) error {
	fs := flag.NewFlagSet("ship", flag.ExitOnError)
	vExpr := fs.String("v", "", "view to materialize")
	docFile := fs.String("doc", "", "source XML document")
	outFile := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *vExpr == "" || *docFile == "" {
		return fmt.Errorf("-v and -doc are required")
	}
	v, err := qav.ParseQuery(*vExpr)
	if err != nil {
		return err
	}
	d, err := loadDoc(*docFile)
	if err != nil {
		return err
	}
	m := qav.ShipView(v, d)
	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := m.Write(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shipped %d tree(s), %d node(s)\n", len(m.Forest), m.Size())
	return nil
}

// cmdMediate answers a query at the mediator using only a shipped
// materialized view: the file's forest is registered with the engine,
// the maximal contained rewriting of the query using the recorded view
// expression is computed, and its compensations run over the stored
// forest.
func cmdMediate(ctx context.Context, eng *engine.Engine, args []string) error {
	fs := flag.NewFlagSet("mediate", flag.ExitOnError)
	qExpr := fs.String("q", "", "query")
	viewFile := fs.String("view", "", "shipped view file (from qavcli ship)")
	backend := fs.String("backend", "auto", "plan backend: auto, structjoin, treedp or stream")
	fs.Parse(args)
	if *qExpr == "" || *viewFile == "" {
		return fmt.Errorf("-q and -view are required")
	}
	be, err := plan.ParseBackend(*backend)
	if err != nil {
		return err
	}
	q, err := qav.ParseQuery(*qExpr)
	if err != nil {
		return err
	}
	f, err := os.Open(*viewFile)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := qav.ReadShippedView(f)
	if err != nil {
		return err
	}
	fmt.Printf("stored view %s: %d tree(s)\n", m.Expr, len(m.Forest))
	eng.RegisterView(*viewFile, m)
	sa, err := eng.AnswerStoredView(ctx, q, *viewFile, be)
	if errors.Is(err, engine.ErrNotAnswerable) {
		return fmt.Errorf("query is not answerable using the stored view")
	}
	if err != nil {
		return err
	}
	if sa.Result.Partial {
		fmt.Printf("PARTIAL (%s): sound but possibly non-maximal rewriting\n", sa.Result.PartialReason)
	}
	fmt.Println("rewriting:", sa.Result.Union)
	printPlan(sa.Plan, sa.Exec)
	fmt.Printf("answers (%d):\n", len(sa.Answers))
	for _, n := range sa.Answers {
		printAnswer(n)
	}
	return nil
}

// cmdSelect picks views to materialize for a workload file (one XPath
// query per line, optionally prefixed "WEIGHT<TAB>").
func cmdSelect(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	workloadFile := fs.String("workload", "", "file with one query per line (optional 'weight<TAB>query')")
	k := fs.Int("k", 3, "maximum number of views to select")
	fs.Parse(args)
	if *workloadFile == "" {
		return fmt.Errorf("-workload is required")
	}
	raw, err := os.ReadFile(*workloadFile)
	if err != nil {
		return err
	}
	var w qav.ViewWorkload
	for lineNo, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		weight := 1.0
		expr := line
		if pre, rest, ok := strings.Cut(line, "\t"); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(pre), 64); err == nil {
				weight, expr = f, strings.TrimSpace(rest)
			}
		}
		q, err := qav.ParseQuery(expr)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		w.Queries = append(w.Queries, q)
		w.Weights = append(w.Weights, weight)
	}
	if len(w.Queries) == 0 {
		return fmt.Errorf("empty workload")
	}
	cands := qav.CandidateViews(w.Queries)
	fmt.Printf("%d queries, %d candidate views, budget %d\n", len(w.Queries), len(cands), *k)
	sel, err := qav.SelectViews(ctx, w, cands, *k)
	if err != nil {
		return err
	}
	fmt.Printf("selected %d view(s), score %.1f:\n", len(sel.Views), sel.Score)
	for _, v := range sel.Views {
		fmt.Printf("  materialize %s\n", v)
	}
	labels := map[int]string{0: "uncovered", 1: "partial", 2: "exact"}
	for i, q := range w.Queries {
		fmt.Printf("  query %-40s %s\n", q.String(), labels[int(sel.PerQuery[i])])
	}
	return nil
}
