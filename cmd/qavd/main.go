// Command qavd serves the QAV engine over HTTP: the mediator component
// of an information-integration deployment. See internal/server for the
// endpoints.
//
//	qavd -addr :8080 -rewrite-timeout 10s
//	curl -s localhost:8080/v1/rewrite -d '{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}'
//	curl -s localhost:8080/metrics       # endpoint/stage/cache metrics
//	curl -s localhost:8080/v1/slowlog    # recent slow queries
//
// Besides the API the daemon serves operational surfaces: GET /metrics
// (JSON snapshot of per-endpoint request/status/latency metrics,
// pipeline stage timings, cache counters and the slow-query log),
// /debug/vars (the same snapshot under the "qav" expvar key) and
// /debug/pprof. Queries slower than -slow-query land in a bounded
// in-memory ring served by /v1/slowlog and are echoed to the process
// log.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests drain (bounded by -drain), new connections are refused, and
// cancelled request contexts stop any still-running enumerations.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"qav/internal/engine"
	"qav/internal/limits"
	"qav/internal/obs"
	"qav/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 1024, "rewrite cache capacity (entries)")
	rewriteTimeout := flag.Duration("rewrite-timeout", 30*time.Second, "per-request rewriting deadline (0 = none)")
	maxEmbeddings := flag.Int("max-embeddings", 0, "enumeration budget per request (0 = library default)")
	drain := flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
	slowQuery := flag.Duration("slow-query", 100*time.Millisecond, "slow-query log threshold (0 = disabled)")
	slowLogSize := flag.Int("slow-log-size", 128, "slow-query log ring capacity")
	maxInFlight := flag.Int("max-inflight", 4*runtime.GOMAXPROCS(0), "concurrent rewriting computations admitted (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 128, "computations waiting for an admission slot before shedding")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "longest a computation may wait for admission before shedding")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	topKViews := flag.Int("topk-views", 0, "cap multi-view rewriting to the K signature-tightest candidate views (0 = all)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent rewrite-cache segment (empty = memory-only)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "periodic segment compaction interval (0 = never; requires -cache-dir)")
	flag.Parse()

	// Admission control in front of Engine compute: cache hits and
	// deduplicated followers bypass the gate; overflowing computations
	// shed with 429 + Retry-After instead of piling up goroutines.
	var gate *limits.Gate
	if *maxInFlight > 0 {
		gate = limits.New(limits.Config{
			MaxInFlight:  *maxInFlight,
			MaxQueue:     *maxQueue,
			QueueTimeout: *queueTimeout,
		})
	}

	eng := engine.New(engine.Config{
		CacheSize:          *cacheSize,
		Timeout:            *rewriteTimeout,
		MaxEmbeddings:      *maxEmbeddings,
		SlowQueryThreshold: *slowQuery,
		SlowLogSize:        *slowLogSize,
		Gate:               gate,
		TopKViews:          *topKViews,
		CacheDir:           *cacheDir,
		SnapshotInterval:   *snapshotInterval,
	})
	eng.SlowLog().SetLogger(log.Default())
	if *cacheDir != "" {
		switch wb := eng.WarmBootInfo(); {
		case wb.Err != "":
			log.Printf("qavd: persistent cache disabled: %s", wb.Err)
		case wb.TruncatedBytes > 0:
			log.Printf("qavd: warm cache replayed %d entries from %s (truncated %d corrupt tail bytes)",
				wb.Replayed, *cacheDir, wb.TruncatedBytes)
		default:
			log.Printf("qavd: warm cache replayed %d entries from %s", wb.Replayed, *cacheDir)
		}
	}
	// The metrics snapshot is also published through expvar so any
	// expvar-aware scraper can read it from /debug/vars.
	obs.Publish("qav", func() any { return eng.MetricsSnapshot() })

	svc := server.NewService(eng)
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	// Profiling endpoints are wired explicitly (rather than importing
	// net/http/pprof for its DefaultServeMux side effect) so they exist
	// regardless of what the default mux holds.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("qavd listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		// Flip /healthz to 503 before the listener stops accepting: a
		// router probing health steers new work away while in-flight
		// requests drain normally.
		svc.StartDraining()
		log.Printf("qavd: signal received, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("qavd: forced shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("qavd: %v", err)
		}
		// Flush queued cache writes so the next boot replays them.
		if err := eng.Close(); err != nil {
			log.Printf("qavd: closing persistent cache: %v", err)
		}
		log.Printf("qavd: stopped")
	}
}
