// Command qavd serves the QAV engine over HTTP: the mediator component
// of an information-integration deployment. See internal/server for the
// endpoints.
//
//	qavd -addr :8080 -rewrite-timeout 10s
//	curl -s localhost:8080/v1/rewrite -d '{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}'
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests drain (bounded by -drain), new connections are refused, and
// cancelled request contexts stop any still-running enumerations.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"qav/internal/engine"
	"qav/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 1024, "rewrite cache capacity (entries)")
	rewriteTimeout := flag.Duration("rewrite-timeout", 30*time.Second, "per-request rewriting deadline (0 = none)")
	maxEmbeddings := flag.Int("max-embeddings", 0, "enumeration budget per request (0 = library default)")
	drain := flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
	flag.Parse()

	eng := engine.New(engine.Config{
		CacheSize:     *cacheSize,
		Timeout:       *rewriteTimeout,
		MaxEmbeddings: *maxEmbeddings,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewWith(eng),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("qavd listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("qavd: signal received, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("qavd: forced shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("qavd: %v", err)
		}
		log.Printf("qavd: stopped")
	}
}
