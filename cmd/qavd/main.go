// Command qavd serves the QAV library over HTTP: the mediator component
// of an information-integration deployment. See internal/server for the
// endpoints.
//
//	qavd -addr :8080
//	curl -s localhost:8080/v1/rewrite -d '{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"qav/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	log.Printf("qavd listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
