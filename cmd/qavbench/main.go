// Command qavbench regenerates every experiment of the reproduction
// (see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-
// measured). Each experiment prints one table; -exp selects a comma-
// separated subset, default "all".
//
// Rewriting-pipeline experiments run through internal/engine — the same
// pipeline the server and CLI use — with caching disabled so timings
// measure the raw algorithms; the "cache" experiment measures the
// engine's cache and singleflight layers themselves. Ctrl-C cancels the
// run's context, stopping in-flight enumerations.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"qav/internal/chase"
	"qav/internal/constraints"
	"qav/internal/engine"
	"qav/internal/plan"
	"qav/internal/rewrite"
	"qav/internal/structjoin"
	"qav/internal/tpq"
	"qav/internal/viewselect"
	"qav/internal/workload"
	"qav/internal/xmltree"
)

func main() {
	expFlag := flag.String("exp", "all", "experiments to run: useemb,mcrsize,inference,chase,schemamcr,savings,overhead,naive,recursive,engines,cache,select,answer,catalog,coldstart,cluster or all")
	seed := flag.Int64("seed", 1, "random seed")
	jsonFlag := flag.Bool("json", false, "measure the hot kernels and emit one JSON report instead of the experiment tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qavbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "qavbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qavbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "qavbench: %v\n", err)
			}
		}()
	}

	if *jsonFlag {
		// `-exp catalog -json` selects the catalog-scaling report and
		// `-exp coldstart -json` the restart-protocol report; every
		// other selection emits the standard hot-kernel report.
		run := runJSON
		switch *expFlag {
		case "catalog":
			run = runCatalogJSON
		case "coldstart":
			run = runColdstartJSON
		case "cluster":
			run = runClusterJSON
		}
		if err := run(ctx, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "qavbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	eng := engine.New(engine.Config{})

	all := map[string]func(context.Context, *engine.Engine, int64){
		"useemb":    expUseEmb,
		"mcrsize":   expMCRSize,
		"inference": expInference,
		"chase":     expChase,
		"schemamcr": expSchemaMCR,
		"savings":   expSavings,
		"overhead":  expOverhead,
		"naive":     expNaive,
		"recursive": expRecursive,
		"engines":   expEngines,
		"cache":     expCache,
		"select":    expSelect,
		"answer":    expAnswer,
		"catalog":   expCatalog,
		"coldstart": expColdstart,
		"cluster":   expCluster,
	}
	order := []string{"useemb", "mcrsize", "inference", "chase", "schemamcr", "savings", "overhead", "naive", "recursive", "engines", "cache", "select", "answer", "catalog", "coldstart", "cluster"}

	selected := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		selected = order
	}
	for _, name := range selected {
		f, ok := all[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		f(ctx, eng, *seed)
		fmt.Println()
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "qavbench: interrupted")
			os.Exit(130)
		}
	}
}

func table(header string, cols ...string) *tabwriter.Writer {
	fmt.Println("### " + header)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(cols, "\t"))
	return w
}

// timeIt runs f reps times and returns the average duration.
func timeIt(reps int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

// E1 (Theorem 2): UseEmb existence-test scaling in |Q| and |V|.
func expUseEmb(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E1 UseEmb existence test (Theorem 2: O(|Q|·|V|²))",
		"|Q|", "|V|", "avg time", "answerable%")
	rng := rand.New(rand.NewSource(seed))
	alphabet := []string{"a", "b", "c", "d"}
	for _, nq := range []int{8, 16, 32, 64, 128} {
		for _, nv := range []int{8, 16, 32, 64} {
			const trials = 30
			var total time.Duration
			answerable := 0
			for i := 0; i < trials; i++ {
				q := workload.RandomPattern(rng, alphabet, nq)
				v := workload.RandomPattern(rng, alphabet, nv)
				start := time.Now()
				if rewrite.Answerable(q, v) {
					answerable++
				}
				total += time.Since(start)
			}
			fmt.Fprintf(w, "%d\t%d\t%v\t%d%%\n", nq, nv, total/trials, answerable*100/trials)
		}
	}
	w.Flush()
}

// E2 (§3.2, Example 1, Fig 8): MCR size is 2^n on the n-branch family.
func expMCRSize(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E2 MCR size on the Figure 8 family (Example 1: 2^n irredundant CRs)",
		"n", "embeddings", "irredundant CRs", "expected", "time")
	v := workload.Fig8View()
	for n := 1; n <= 9; n++ {
		q := workload.Fig8Query(n)
		start := time.Now()
		res, err := eng.Rewrite(ctx, engine.Request{Query: q, View: v, MaxEmbeddings: 1 << 22, NoCache: true})
		if err != nil {
			fmt.Fprintf(w, "%d\t-\t-\t%d\tERROR %v\n", n, 1<<n, err)
			continue
		}
		expected := 1 << n
		if n == 1 {
			expected = 1 // the clipped CR collapses into the mapped one
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%v\n",
			n, res.EmbeddingsConsidered, len(res.Union.Patterns), expected, time.Since(start))
	}
	w.Flush()
}

// E3 (Theorem 5): constraint inference scaling in |S|.
func expInference(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E3 constraint inference (Theorem 5: O(|S|³))",
		"|S|", "constraints", "avg time")
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{8, 16, 32, 64, 96, 128} {
		g := workload.RandomDAGSchema(rng, n, 0.3)
		var count int
		avg := timeIt(5, func() { count = constraints.Infer(g).Len() })
		fmt.Fprintf(w, "%d\t%d\t%v\n", n, count, avg)
	}
	w.Flush()
}

// E5/E8 (Fig 12, Lemma 4): exhaustive chase explodes on stacked
// diamonds; intelligent chase stays query-sized.
func expChase(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E5/E8 exhaustive vs intelligent chase (Figure 12 diamonds)",
		"levels", "exh size", "exh time", "intel size", "intel time")
	q := tpq.MustParse("/x0[b0]")
	for levels := 1; levels <= 7; levels++ {
		g := workload.DiamondSchema(levels)
		sigma := constraints.Infer(g)
		scOnly := constraints.NewSet(sigma.OfKind(constraints.SC))
		v := tpq.MustParse("/x0")
		startEx := time.Now()
		chased, err := chase.Exhaustive(ctx, v, scOnly, chase.Options{MaxSteps: 1 << 20})
		exTime := time.Since(startEx)
		exSize := -1
		if err == nil {
			exSize = chased.Size()
		}
		startIn := time.Now()
		intel := chase.Intelligent(v, q, sigma)
		inTime := time.Since(startIn)
		fmt.Fprintf(w, "%d\t%d\t%v\t%d\t%v\n", levels, exSize, exTime, intel.Size(), inTime)
	}
	w.Flush()
}

// E4 (Theorem 9): end-to-end MCRGenSchema scaling. Constraint inference
// is pre-warmed via the engine's schema-context cache so the timed
// section measures the rewriting algorithm, matching the paper's setup.
func expSchemaMCR(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E4 MCRGenSchema end to end (Theorem 9: polynomial)",
		"|S|", "|Q|,|V|≤", "avg time", "answerable%")
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{8, 16, 32, 48} {
		for _, pq := range []int{4, 8, 12} {
			const trials = 25
			var total time.Duration
			answerable := 0
			for i := 0; i < trials; i++ {
				g := workload.RandomDAGSchema(rng, n, 0.3)
				eng.SchemaContext(g)
				q := workload.RandomSchemaPattern(rng, g, pq)
				v := workload.RandomSchemaPattern(rng, g, pq)
				start := time.Now()
				res, err := eng.Rewrite(ctx, engine.Request{Query: q, View: v, Schema: g, NoCache: true})
				total += time.Since(start)
				if err == nil && !res.Union.Empty() {
					answerable++
				}
			}
			fmt.Fprintf(w, "%d\t%d\t%v\t%d%%\n", n, pq, total/trials, answerable*100/trials)
		}
	}
	w.Flush()
}

// E6 ([14] "substantial savings"): answering via the materialized view
// vs evaluating the query on the document.
func expSavings(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E6 savings: direct evaluation vs compensation on materialized view",
		"|D| nodes", "view subtree nodes", "t(direct)", "t(materialize)", "t(answer via view)", "speedup", "answers")
	rng := rand.New(rand.NewSource(seed))
	q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
	v := tpq.MustParse("//Trials[//Status]")
	res, err := eng.Rewrite(ctx, engine.Request{Query: q, View: v, NoCache: true})
	if err != nil {
		panic(err)
	}
	for _, groups := range []int{500, 1000, 5000, 20000} {
		d, err := workload.ClinicalTrialsDoc(ctx, rng, groups, 10, 0.02)
		if err != nil {
			panic(err)
		}
		var direct []*xmltree.Node
		tDirect := timeIt(3, func() { direct = q.Evaluate(d) })
		var viewNodes []*xmltree.Node
		tMat := timeIt(3, func() { viewNodes = rewrite.MaterializeView(v, d) })
		viewSize := 0
		for _, vn := range viewNodes {
			viewSize += len(vn.Subtree())
		}
		var via []*xmltree.Node
		tVia := timeIt(3, func() {
			var err error
			if via, err = rewrite.AnswerMaterialized(ctx, res.CRs, d, viewNodes); err != nil {
				panic(err)
			}
		})
		speedup := float64(tDirect) / float64(tVia)
		fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%v\t%.1fx\t%d=%d\n",
			d.Size(), viewSize, tDirect, tMat, tVia, speedup, len(via), len(direct))
	}
	w.Flush()
}

// E7 ([14] "minor overhead"): answerability testing plus rewriting
// generation cost relative to one query evaluation.
func expOverhead(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E7 overhead: answerability test + MCR generation vs one evaluation",
		"|D| nodes", "t(UseEmb)", "t(MCRGen)", "t(evaluate)", "overhead")
	rng := rand.New(rand.NewSource(seed))
	q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
	v := tpq.MustParse("//Trials//Trial")
	for _, groups := range []int{100, 1000, 5000} {
		d, err := workload.ClinicalTrialsDoc(ctx, rng, groups, 10, 0.1)
		if err != nil {
			panic(err)
		}
		tTest := timeIt(50, func() { rewrite.Answerable(q, v) })
		tGen := timeIt(50, func() {
			if _, err := eng.Rewrite(ctx, engine.Request{Query: q, View: v, NoCache: true}); err != nil {
				panic(err)
			}
		})
		tEval := timeIt(3, func() { q.Evaluate(d) })
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%.2f%%\n",
			d.Size(), tTest, tGen, tEval, 100*float64(tTest+tGen)/float64(tEval))
	}
	w.Flush()
}

// E9 (ablation): MCRGen vs the brute-force NaiveMCR baseline.
func expNaive(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E9 ablation: MCRGen vs brute-force baseline (same MCRs)",
		"|Q|,|V|≤", "t(MCRGen)", "t(naive)", "Σ useful embeddings", "Σ naive matchings kept", "agree%")
	rng := rand.New(rand.NewSource(seed))
	alphabet := []string{"a", "b", "c"}
	for _, size := range []int{3, 4, 5, 6} {
		const trials = 20
		var tFast, tSlow time.Duration
		var fastEmb, slowEmb, agree int
		for i := 0; i < trials; i++ {
			q := workload.RandomPattern(rng, alphabet, size)
			v := workload.RandomPattern(rng, alphabet, size)
			start := time.Now()
			res, err := eng.Rewrite(ctx, engine.Request{Query: q, View: v, MaxEmbeddings: 1 << 18, NoCache: true})
			tFast += time.Since(start)
			if err != nil {
				continue
			}
			start = time.Now()
			naive, err := rewrite.NaiveMCR(ctx, q, v)
			tSlow += time.Since(start)
			if err != nil {
				continue
			}
			fastEmb += res.EmbeddingsConsidered
			slowEmb += naive.EmbeddingsConsidered
			if res.Union.SameAs(naive.Union) {
				agree++
			}
		}
		fmt.Fprintf(w, "%d\t%v\t%v\t%d\t%d\t%d%%\n",
			size, tFast/trials, tSlow/trials, fastEmb, slowEmb, agree*100/trials)
	}
	w.Flush()
}

// E10 (§5, Fig 15): recursive schemas restore the exponential MCR.
func expRecursive(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E10 recursive schemas: MCR size on the Figure 15 family (§5)",
		"branches k", "CRs (recursive schema)", "CRs (schemaless)", "time")
	for k := 1; k <= 6; k++ {
		g := workload.Fig15Schema(k)
		eng.SchemaContext(g)
		q := workload.Fig15Query(k)
		v := tpq.MustParse("//a//b")
		start := time.Now()
		res, err := eng.Rewrite(ctx, engine.Request{Query: q, View: v, Schema: g, Recursive: true, MaxEmbeddings: rewrite.DefaultMaxEmbeddings, NoCache: true})
		if err != nil {
			fmt.Fprintf(w, "%d\tERROR %v\n", k, err)
			continue
		}
		plain, err := eng.Rewrite(ctx, engine.Request{Query: q, View: v, MaxEmbeddings: rewrite.DefaultMaxEmbeddings, NoCache: true})
		if err != nil {
			fmt.Fprintf(w, "%d\tERROR %v\n", k, err)
			continue
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%v\n",
			k, len(res.Union.Patterns), len(plain.Union.Patterns), time.Since(start))
	}
	w.Flush()
}

// E11 (substrate): the two evaluation engines — tree-DP vs structural
// joins over inverted tag lists — on selective and unselective queries.
func expEngines(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E11 evaluation engines: tree-DP vs structural joins",
		"|D| nodes", "query", "t(tree-DP)", "t(structjoin, indexed)", "t(index build)")
	rng := rand.New(rand.NewSource(seed))
	for _, groups := range []int{1000, 10000} {
		d, err := workload.ClinicalTrialsDoc(ctx, rng, groups, 10, 0.05)
		if err != nil {
			panic(err)
		}
		var ix *structjoin.Index
		tBuild := timeIt(3, func() { ix = structjoin.Build(d) })
		for _, expr := range []string{
			"//Trials[//Status]//Trial/Patient", // selective predicate
			"//Trials//Trial",                   // unselective
			"//Status",                          // highly selective
		} {
			q := tpq.MustParse(expr)
			tDP := timeIt(3, func() { q.Evaluate(d) })
			tSJ := timeIt(3, func() {
				if _, err := ix.Evaluate(ctx, q); err != nil {
					panic(err)
				}
			})
			fmt.Fprintf(w, "%d\t%s\t%v\t%v\t%v\n", d.Size(), expr, tDP, tSJ, tBuild)
		}
	}
	w.Flush()
}

// E12 (view selection, paper's [27] direction): greedy selection
// quality/time over random workloads.
func expSelect(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E12 view selection: greedy coverage of random workloads",
		"queries", "candidates", "k", "exact", "partial", "uncovered", "time")
	rng := rand.New(rand.NewSource(seed))
	alphabet := []string{"a", "b", "c", "d"}
	for _, nq := range []int{5, 10, 20} {
		for _, k := range []int{1, 3, 5} {
			var qs []*tpq.Pattern
			r2 := rand.New(rand.NewSource(rng.Int63()))
			for i := 0; i < nq; i++ {
				qs = append(qs, workload.RandomPattern(r2, alphabet, 6))
			}
			cands := viewselect.Candidates(qs)
			start := time.Now()
			sel, err := viewselect.Greedy(ctx, viewselect.Workload{Queries: qs}, cands, k)
			if err != nil {
				fmt.Fprintf(w, "%d\tERROR %v\n", nq, err)
				continue
			}
			var exact, partial, useless int
			for _, b := range sel.PerQuery {
				switch b {
				case viewselect.Exact:
					exact++
				case viewselect.Partial:
					partial++
				default:
					useless++
				}
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
				nq, len(cands), k, exact, partial, useless, time.Since(start))
		}
	}
	w.Flush()
}

// E13 (engine layer): what the cache and singleflight layers buy.
// "cold" is the raw pipeline (cache bypassed), "cached" a hit on a warm
// cache, "dup x8" eight goroutines requesting the same key at once —
// singleflight computes once and the other seven wait on the flight.
func expCache(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E13 engine cache and singleflight on the Figure 8 family",
		"n", "t(cold)", "t(cached)", "t(dup x8 wall)", "computes for dup")
	v := workload.Fig8View()
	for _, n := range []int{4, 6, 8} {
		q := workload.Fig8Query(n)
		tCold := timeIt(5, func() {
			if _, err := eng.Rewrite(ctx, engine.Request{Query: q, View: v, MaxEmbeddings: rewrite.DefaultMaxEmbeddings, NoCache: true}); err != nil {
				panic(err)
			}
		})
		// Warm a private engine, then time hits.
		warm := engine.New(engine.Config{})
		req := engine.Request{Query: q, View: v, MaxEmbeddings: rewrite.DefaultMaxEmbeddings}
		if _, err := warm.Rewrite(ctx, req); err != nil {
			panic(err)
		}
		tHit := timeIt(1000, func() {
			if _, err := warm.Rewrite(ctx, req); err != nil {
				panic(err)
			}
		})
		// Eight concurrent identical requests against a cold engine.
		cold := engine.New(engine.Config{})
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := cold.Rewrite(ctx, req); err != nil {
					panic(err)
				}
			}()
		}
		wg.Wait()
		tDup := time.Since(start)
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%d\n", n, tCold, tHit, tDup, cold.Stats().CacheMisses)
	}
	w.Flush()
}

// E14 (answer plans): end-to-end answering over a ~10^6-node corpus —
// per-CR naive evaluation vs the compiled plan under each forced
// backend and the auto heuristic. The plan is compiled once and the
// forest indexed once (both timed); exec is timed per backend.
func expAnswer(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E14 answer plans: compiled plan vs naive per-CR evaluation",
		"method", "answers", "t(index)", "t(exec)", "speedup")
	rng := rand.New(rand.NewSource(seed))
	d, err := workload.ClinicalTrialsDoc(ctx, rng, 700, 700, 0.1)
	if err != nil {
		panic(err)
	}
	q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
	v := tpq.MustParse("//Trials//Trial")
	res, err := rewrite.MCR(q, v, rewrite.Options{Context: ctx})
	if err != nil {
		panic(err)
	}
	viewNodes := rewrite.MaterializeView(v, d)
	fmt.Printf("corpus: %d nodes, view materializes %d subtrees, MCR has %d CR(s)\n",
		d.Size(), len(viewNodes), len(res.CRs))

	var naive []*xmltree.Node
	tNaive := timeIt(3, func() {
		if naive, err = rewrite.NaiveAnswerMaterialized(ctx, res.CRs, d, viewNodes); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "naive\t%d\t-\t%v\t1.00x\n", len(naive), tNaive)

	pl, err := plan.Compile(ctx, rewrite.Compensations(res.CRs))
	if err != nil {
		panic(err)
	}
	var f *plan.Forest
	tIndex := timeIt(3, func() {
		if f, err = plan.IndexSubtrees(ctx, d, viewNodes); err != nil {
			panic(err)
		}
	})
	for _, be := range []plan.Backend{plan.StructJoin, plan.TreeDP, plan.Stream, plan.Auto} {
		var r *plan.ExecResult
		tExec := timeIt(3, func() {
			if r, err = pl.Exec(ctx, f, plan.ExecOptions{Backend: be}); err != nil {
				panic(err)
			}
		})
		if len(r.Nodes()) != len(naive) {
			panic(fmt.Sprintf("backend %s: %d answers, naive %d", be, len(r.Nodes()), len(naive)))
		}
		fmt.Fprintf(w, "plan/%s\t%d\t%v\t%v\t%.2fx\n",
			be, len(r.Nodes()), tIndex, tExec, float64(tNaive)/float64(tExec))
	}
	w.Flush()
}
