package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"qav/internal/engine"
	"qav/internal/router"
	"qav/internal/server"
	"qav/internal/workload"
)

// The cluster experiment (E17) measures what canonical-affinity
// routing buys over round-robin on a 3-replica in-process cluster: the
// same workload (distinct canonical rewrite requests, repeated over
// several rounds) is driven through internal/router under each policy,
// and the per-replica rewrite-cache hit rates plus client-side p50/p99
// tell the story. Under affinity every canonical key has one stable
// owner, so after the first round the owner serves from cache; under
// round-robin each key revisits every replica in turn, so each replica
// recomputes each key before it can hit.

const (
	clusterReplicas = 3
	// clusterDistinct is deliberately coprime with clusterReplicas:
	// were it a multiple, round-robin would assign each key to the
	// same replica every round and accidentally behave affinely.
	clusterDistinct = 25 // distinct canonical query/view pairs
	clusterRounds   = 6  // passes over the distinct set
)

// clusterWorkload builds the distinct request bodies.
func clusterWorkload(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	alphabet := []string{"a", "b", "c"}
	esc := func(s string) string {
		b, _ := json.Marshal(s)
		return string(b)
	}
	bodies := make([]string, clusterDistinct)
	for i := range bodies {
		q := workload.RandomPattern(rng, alphabet, 5).String()
		v := workload.RandomPattern(rng, alphabet, 5).String()
		bodies[i] = `{"query":` + esc(q) + `,"view":` + esc(v) + `}`
	}
	return bodies
}

// clusterReplicaStats is one replica's cache outcome under a policy.
type clusterReplicaStats struct {
	Name    string  `json:"name"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// clusterPolicyResult is one policy's measured run.
type clusterPolicyResult struct {
	Policy      string                `json:"policy"`
	Requests    int                   `json:"requests"`
	P50NsPerOp  float64               `json:"p50_ns_per_op"`
	P99NsPerOp  float64               `json:"p99_ns_per_op"`
	CacheHits   int64                 `json:"cache_hits"`
	CacheMisses int64                 `json:"cache_misses"`
	HitRate     float64               `json:"hit_rate"`
	Replicas    []clusterReplicaStats `json:"replicas"`
}

// clusterSummary is the verdict: the two policies side by side and the
// affinity hit-rate advantage the CI bench-smoke job asserts on.
type clusterSummary struct {
	ReplicaCount         int                 `json:"replica_count"`
	Distinct             int                 `json:"distinct_requests"`
	Rounds               int                 `json:"rounds"`
	Affinity             clusterPolicyResult `json:"affinity"`
	RoundRobin           clusterPolicyResult `json:"roundrobin"`
	AffinityHitAdvantage float64             `json:"affinity_hit_advantage"`
}

// clusterRunPolicy boots a fresh 3-replica cluster, drives the
// workload through the router under the named policy, and reports
// latency quantiles plus per-replica cache outcomes.
func clusterRunPolicy(ctx context.Context, policy string, seed int64) (clusterPolicyResult, error) {
	ht := router.NewHandlerTransport()
	var engines []*engine.Engine
	var urls []string
	for i := 0; i < clusterReplicas; i++ {
		eng := engine.New(engine.Config{CacheSize: 4 * clusterDistinct, MaxEmbeddings: 1 << 16})
		engines = append(engines, eng)
		host := fmt.Sprintf("replica-%d", i)
		ht.Register(host, server.NewService(eng).Handler())
		urls = append(urls, "http://"+host)
	}
	defer func() {
		for _, eng := range engines {
			eng.Close()
		}
	}()
	rt, err := router.New(router.Config{
		Replicas:      urls,
		Policy:        policy,
		Seed:          seed,
		ProbeInterval: 50 * time.Millisecond,
		Transport:     ht,
	})
	if err != nil {
		return clusterPolicyResult{}, err
	}
	defer rt.Close()

	bodies := clusterWorkload(seed)
	h := rt.Handler()
	latencies := make([]time.Duration, 0, clusterRounds*len(bodies))
	for round := 0; round < clusterRounds; round++ {
		for i, body := range bodies {
			if ctx.Err() != nil {
				return clusterPolicyResult{}, ctx.Err()
			}
			req := httptest.NewRequest("POST", "/v1/rewrite", strings.NewReader(body))
			rec := httptest.NewRecorder()
			start := time.Now()
			h.ServeHTTP(rec, req)
			latencies = append(latencies, time.Since(start))
			if rec.Code != http.StatusOK {
				return clusterPolicyResult{}, fmt.Errorf("%s round %d request %d: status %d: %s",
					policy, round, i, rec.Code, rec.Body.String())
			}
		}
	}

	res := clusterPolicyResult{Policy: policy, Requests: len(latencies)}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50NsPerOp = float64(latencies[len(latencies)/2].Nanoseconds())
	res.P99NsPerOp = float64(latencies[len(latencies)*99/100].Nanoseconds())
	for i, eng := range engines {
		st := eng.Stats()
		hits := st.CacheHits + st.CacheWarmHits
		rs := clusterReplicaStats{
			Name:   fmt.Sprintf("replica-%d", i),
			Hits:   hits,
			Misses: st.CacheMisses,
		}
		if total := rs.Hits + rs.Misses; total > 0 {
			rs.HitRate = float64(rs.Hits) / float64(total)
		}
		res.Replicas = append(res.Replicas, rs)
		res.CacheHits += rs.Hits
		res.CacheMisses += rs.Misses
	}
	if total := res.CacheHits + res.CacheMisses; total > 0 {
		res.HitRate = float64(res.CacheHits) / float64(total)
	}
	return res, nil
}

// clusterRun measures both policies on identical fresh clusters.
func clusterRun(ctx context.Context, seed int64) (clusterSummary, error) {
	sum := clusterSummary{
		ReplicaCount: clusterReplicas,
		Distinct:     clusterDistinct,
		Rounds:       clusterRounds,
	}
	var err error
	if sum.Affinity, err = clusterRunPolicy(ctx, "affinity", seed); err != nil {
		return sum, err
	}
	if sum.RoundRobin, err = clusterRunPolicy(ctx, "roundrobin", seed); err != nil {
		return sum, err
	}
	sum.AffinityHitAdvantage = sum.Affinity.HitRate - sum.RoundRobin.HitRate
	return sum, nil
}

// clusterReport is the `-exp cluster -json` document, archived as
// BENCH_PR10.json.
type clusterReport struct {
	GOOS    string         `json:"goos"`
	GOARCH  string         `json:"goarch"`
	NumCPU  int            `json:"num_cpu"`
	Seed    int64          `json:"seed"`
	Cluster clusterSummary `json:"cluster"`
}

// runClusterJSON measures affinity vs round-robin and writes one JSON
// report to stdout.
func runClusterJSON(ctx context.Context, seed int64) error {
	sum, err := clusterRun(ctx, seed)
	if err != nil {
		return err
	}
	report := clusterReport{
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		Seed:    seed,
		Cluster: sum,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// E17: affinity vs round-robin routing on a 3-replica cluster.
func expCluster(ctx context.Context, _ *engine.Engine, seed int64) {
	sum, err := clusterRun(ctx, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster: %v\n", err)
		return
	}
	w := table("E17 cluster routing: affinity vs round-robin (3 replicas)",
		"policy", "requests", "p50", "p99", "hits", "misses", "hit rate")
	for _, res := range []clusterPolicyResult{sum.Affinity, sum.RoundRobin} {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%d\t%d\t%.1f%%\n",
			res.Policy, res.Requests,
			time.Duration(res.P50NsPerOp), time.Duration(res.P99NsPerOp),
			res.CacheHits, res.CacheMisses, 100*res.HitRate)
	}
	w.Flush()
	for _, res := range []clusterPolicyResult{sum.Affinity, sum.RoundRobin} {
		parts := make([]string, len(res.Replicas))
		for i, rs := range res.Replicas {
			parts[i] = fmt.Sprintf("%s %.0f%%", rs.Name, 100*rs.HitRate)
		}
		fmt.Printf("%-10s per-replica hit rates: %s\n", res.Policy, strings.Join(parts, ", "))
	}
	fmt.Printf("affinity hit-rate advantage: %+.1f points\n", 100*sum.AffinityHitAdvantage)
}
