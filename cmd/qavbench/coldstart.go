package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"qav/internal/engine"
	"qav/internal/workload"
)

// The coldstart experiment (E16) measures what the persistent rewrite
// tier buys across a process restart: a first engine computes a
// workload cold and persists it, then a second engine opened on the
// same cache directory replays the segment and serves the identical
// workload from the warm tier without recomputing. Three per-request
// rates bracket the tier: cold compute (full pipeline), warm serve
// (decode + promote from the replayed tier), and hot serve (tier-1
// after promotion).

const coldstartRequests = 200

// coldstartWorkload builds a deterministic mix of distinct
// query/view expression pairs, sized like the mcrgen_random6 kernel.
func coldstartWorkload(seed int64) [][2]string {
	rng := rand.New(rand.NewSource(seed))
	alphabet := []string{"a", "b", "c"}
	reqs := make([][2]string, coldstartRequests)
	for i := range reqs {
		reqs[i][0] = workload.RandomPattern(rng, alphabet, 6).String()
		reqs[i][1] = workload.RandomPattern(rng, alphabet, 6).String()
	}
	return reqs
}

// coldstartRun drives the two-boot protocol against one cache
// directory and returns the measured kernels plus the tier summary.
func coldstartRun(ctx context.Context, seed int64) ([]kernelResult, coldstartSummary, error) {
	dir, err := os.MkdirTemp("", "qavbench-coldstart-*")
	if err != nil {
		return nil, coldstartSummary{}, err
	}
	defer os.RemoveAll(dir)

	reqs := coldstartWorkload(seed)
	serve := func(e *engine.Engine) func() {
		i := 0
		return func() {
			r := reqs[i%len(reqs)]
			if _, err := e.RewriteExpr(ctx, engine.RewriteRequest{Query: r[0], View: r[1]}); err != nil {
				panic(err)
			}
			i++
		}
	}

	var kernels []kernelResult
	var sum coldstartSummary

	// First boot: every request is a cold miss; the async writer
	// persists each completed result and Close drains the queue.
	cold := engine.New(engine.Config{CacheSize: 2 * coldstartRequests, CacheDir: dir})
	if wb := cold.WarmBootInfo(); !wb.Enabled {
		return nil, sum, fmt.Errorf("persistent tier disabled: %s", wb.Err)
	}
	kernels = append(kernels, measure("coldstart_cold_compute", len(reqs), serve(cold)))
	if err := cold.Close(); err != nil {
		return nil, sum, err
	}
	st := cold.Stats()
	sum.Requests = len(reqs)
	sum.Persisted = st.Persisted
	sum.SegmentBytes = st.SegmentBytes

	// Second boot: the replay itself is the restart cost, then the
	// same workload is served twice — once from the warm tier (decode
	// + promote) and once from tier 1 after promotion.
	bootStart := time.Now()
	warm := engine.New(engine.Config{CacheSize: 2 * coldstartRequests, CacheDir: dir})
	bootDur := time.Since(bootStart)
	defer warm.Close()
	wb := warm.WarmBootInfo()
	if wb.Err != "" || wb.TruncatedBytes != 0 {
		return nil, sum, fmt.Errorf("dirty warm boot: %+v", wb)
	}
	sum.Replayed = wb.Replayed
	kernels = append(kernels, kernelResult{
		Name: "coldstart_replay_boot", Iters: 1,
		NsPerOp: float64(bootDur.Nanoseconds()),
	})
	kernels = append(kernels, measure("coldstart_warm_serve", len(reqs), serve(warm)))
	kernels = append(kernels, measure("coldstart_hot_serve", len(reqs), serve(warm)))

	wst := warm.Stats()
	sum.WarmHits = wst.CacheWarmHits
	sum.WarmMisses = wst.CacheMisses
	for _, k := range kernels {
		switch k.Name {
		case "coldstart_cold_compute":
			sum.ColdNsPerOp = k.NsPerOp
		case "coldstart_warm_serve":
			sum.WarmNsPerOp = k.NsPerOp
		case "coldstart_hot_serve":
			sum.HotNsPerOp = k.NsPerOp
		}
	}
	if sum.WarmNsPerOp > 0 {
		sum.SpeedupColdOverWarm = sum.ColdNsPerOp / sum.WarmNsPerOp
	}
	return kernels, sum, nil
}

// coldstartSummary is the tier verdict of the coldstart report: how
// much was persisted and replayed, whether the warm boot recomputed
// anything, and the cold/warm rate ratio.
type coldstartSummary struct {
	Requests            int     `json:"requests"`
	Persisted           int64   `json:"persisted"`
	Replayed            int64   `json:"replayed"`
	SegmentBytes        int64   `json:"segment_bytes"`
	WarmHits            int64   `json:"warm_hits"`
	WarmMisses          int64   `json:"warm_misses"`
	ColdNsPerOp         float64 `json:"cold_ns_per_op"`
	WarmNsPerOp         float64 `json:"warm_ns_per_op"`
	HotNsPerOp          float64 `json:"hot_ns_per_op"`
	SpeedupColdOverWarm float64 `json:"speedup_cold_over_warm"`
}

// coldstartReport is the `-exp coldstart -json` document, archived as
// BENCH_PR9.json and uploaded by the CI bench-smoke job.
type coldstartReport struct {
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	NumCPU    int              `json:"num_cpu"`
	Seed      int64            `json:"seed"`
	Kernels   []kernelResult   `json:"kernels"`
	Coldstart coldstartSummary `json:"coldstart"`
}

// runColdstartJSON measures the restart protocol and writes one JSON
// report to stdout.
func runColdstartJSON(ctx context.Context, seed int64) error {
	kernels, sum, err := coldstartRun(ctx, seed)
	if err != nil {
		return err
	}
	report := coldstartReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Seed:      seed,
		Kernels:   kernels,
		Coldstart: sum,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// E16: cold-vs-warm boot through the persistent rewrite tier.
func expColdstart(ctx context.Context, eng *engine.Engine, seed int64) {
	kernels, sum, err := coldstartRun(ctx, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coldstart: %v\n", err)
		return
	}
	w := table("E16 cold vs warm boot (persistent rewrite tier)",
		"phase", "ops", "avg/op")
	for _, k := range kernels {
		fmt.Fprintf(w, "%s\t%d\t%v\n", k.Name, k.Iters, time.Duration(k.NsPerOp))
	}
	w.Flush()
	fmt.Printf("persisted=%d replayed=%d warmHits=%d warmMisses=%d segment=%dB speedup(cold/warm)=%.1fx\n",
		sum.Persisted, sum.Replayed, sum.WarmHits, sum.WarmMisses, sum.SegmentBytes, sum.SpeedupColdOverWarm)
}
