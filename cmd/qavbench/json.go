package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"time"

	"qav/internal/obs"
	"qav/internal/plan"
	"qav/internal/rewrite"
	"qav/internal/tpq"
	"qav/internal/workload"
)

// The -json mode measures the hot kernels the performance work targets
// and emits one machine-readable document, suitable for archiving in
// BENCH_PR*.json records and for the CI benchmark artifact. Kernel
// setups mirror the corresponding benchmarks in bench_test.go
// (BenchmarkContainment, BenchmarkMCRGenExponential,
// BenchmarkNaiveVsMCRGen, BenchmarkUseEmbExistence, BenchmarkEvaluate)
// so the numbers are directly comparable with `go test -bench`.

// kernelResult is one measured kernel of the -json report.
type kernelResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// jsonReport is the top-level -json document. Stages carries pipeline
// stage timings aggregated across the rewriting kernels, in the exact
// schema the server's GET /metrics emits for its "stages" section, so
// bench artifacts and production metrics can be compared field for
// field.
type jsonReport struct {
	GOOS    string                       `json:"goos"`
	GOARCH  string                       `json:"goarch"`
	NumCPU  int                          `json:"num_cpu"`
	Seed    int64                        `json:"seed"`
	Kernels []kernelResult               `json:"kernels"`
	Stages  map[string]obs.StageSnapshot `json:"stages,omitempty"`
}

// measure runs f iters times and reports per-op wall time and heap
// allocation deltas. A GC before the loop keeps earlier garbage from
// being attributed to the kernel; ReadMemStats deltas count every
// allocation inside the loop, matching -benchmem's accounting.
func measure(name string, iters int, f func()) kernelResult {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return kernelResult{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
	}
}

// runJSON measures every kernel and writes the report to stdout.
func runJSON(ctx context.Context, seed int64) error {
	report := jsonReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Seed:   seed,
	}
	add := func(r kernelResult) { report.Kernels = append(report.Kernels, r) }

	// Rewriting kernels run with a per-op stage span folded into this
	// registry, producing the same per-stage counts, totals and latency
	// quantiles that qavd's /metrics reports.
	reg := obs.NewRegistry()
	spanned := func(run func(ctx context.Context)) func() {
		return func() {
			sp := obs.NewSpan()
			run(obs.WithSpan(context.Background(), sp))
			reg.ObserveSpan(sp)
		}
	}

	// Containment over random size-12 patterns (BenchmarkContainment).
	{
		rng := rand.New(rand.NewSource(3))
		alphabet := []string{"a", "b", "c"}
		ps := make([]*tpq.Pattern, 64)
		for i := range ps {
			ps[i] = workload.RandomPattern(rng, alphabet, 12)
		}
		i := 0
		add(measure("containment", 200000, func() {
			tpq.Contained(ps[i%len(ps)], ps[(i+1)%len(ps)])
			i++
		}))
	}

	// MCR generation on the exponential Figure 8 family at n=7
	// (BenchmarkMCRGenExponential/n7).
	{
		v := workload.Fig8View()
		q := workload.Fig8Query(7)
		add(measure("mcr_fig8_n7", 20, spanned(func(ctx context.Context) {
			if _, err := rewrite.MCR(q, v, rewrite.Options{MaxEmbeddings: 1 << 22, Context: ctx}); err != nil {
				panic(err)
			}
		})))
	}

	// MCRGen vs the brute-force baseline on random size-6 pairs
	// (BenchmarkNaiveVsMCRGen).
	{
		rng := rand.New(rand.NewSource(7))
		alphabet := []string{"a", "b", "c"}
		qs := make([]*tpq.Pattern, 32)
		vs := make([]*tpq.Pattern, 32)
		for i := range qs {
			qs[i] = workload.RandomPattern(rng, alphabet, 6)
			vs[i] = workload.RandomPattern(rng, alphabet, 6)
		}
		i := 0
		add(measure("mcrgen_random6", 50000, spanned(func(ctx context.Context) {
			if _, err := rewrite.MCR(qs[i%len(qs)], vs[i%len(vs)], rewrite.Options{MaxEmbeddings: 1 << 18, Context: ctx}); err != nil {
				panic(err)
			}
			i++
		})))
		i = 0
		add(measure("naive_random6", 50000, func() {
			if _, err := rewrite.NaiveMCR(ctx, qs[i%len(qs)], vs[i%len(vs)]); err != nil {
				panic(err)
			}
			i++
		}))
	}

	// UseEmb answerability on random Q128/V64 pairs
	// (BenchmarkUseEmbExistence's largest cell).
	{
		rng := rand.New(rand.NewSource(1))
		alphabet := []string{"a", "b", "c", "d"}
		qs := make([]*tpq.Pattern, 16)
		vs := make([]*tpq.Pattern, 16)
		for i := range qs {
			qs[i] = workload.RandomPattern(rng, alphabet, 128)
			vs[i] = workload.RandomPattern(rng, alphabet, 64)
		}
		i := 0
		add(measure("useemb_q128_v64", 5000, func() {
			rewrite.Answerable(qs[i%len(qs)], vs[i%len(vs)])
			i++
		}))
	}

	// Pattern evaluation on a 100-group clinical-trials document
	// (BenchmarkEvaluate/groups100).
	{
		q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
		d, err := workload.ClinicalTrialsDoc(ctx, rand.New(rand.NewSource(1)), 100, 10, 0.1)
		if err != nil {
			return err
		}
		add(measure("evaluate_groups100", 2000, func() { q.Evaluate(d) }))
	}

	// End-to-end answering over a ~10^6-node corpus (the expAnswer
	// experiment's setup): per-CR naive evaluation vs the compiled
	// answer plan, plus the one-time forest index build. The plan
	// kernels fold their stage spans into the same registry, so the
	// report's "stages" section carries plan.compile/index/exec rows.
	{
		d, err := workload.ClinicalTrialsDoc(ctx, rand.New(rand.NewSource(1)), 700, 700, 0.1)
		if err != nil {
			return err
		}
		q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
		v := tpq.MustParse("//Trials//Trial")
		res, err := rewrite.MCR(q, v, rewrite.Options{Context: ctx})
		if err != nil {
			return err
		}
		viewNodes := rewrite.MaterializeView(v, d)
		add(measure("answer_naive_1m", 3, func() {
			if _, err := rewrite.NaiveAnswerMaterialized(ctx, res.CRs, d, viewNodes); err != nil {
				panic(err)
			}
		}))
		var pl *plan.Plan
		add(measure("answer_plan_compile", 100, spanned(func(ctx context.Context) {
			var err error
			if pl, err = plan.Compile(ctx, rewrite.Compensations(res.CRs)); err != nil {
				panic(err)
			}
		})))
		var f *plan.Forest
		add(measure("answer_plan_index_1m", 3, spanned(func(ctx context.Context) {
			var err error
			if f, err = plan.IndexSubtrees(ctx, d, viewNodes); err != nil {
				panic(err)
			}
		})))
		add(measure("answer_plan_exec_1m", 5, spanned(func(ctx context.Context) {
			if _, err := pl.Exec(ctx, f, plan.ExecOptions{}); err != nil {
				panic(err)
			}
		})))
	}

	report.Stages = reg.Snapshot().Stages

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
