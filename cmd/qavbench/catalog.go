package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"qav/internal/engine"
	"qav/internal/rewrite"
	"qav/internal/tpq"
	"qav/internal/viewstore"
	"qav/internal/workload"
)

// The catalog experiment measures the signature-indexed view catalog at
// 10⁴–10⁵ registrations: register throughput (signature construction
// included), candidate-lookup latency and allocation count, top-k
// selection, and the headline ablation — the batched MCRMultiView
// pipeline against the frozen flat-scan MCRMultiViewRef baseline over a
// 10k-view catalog with an anchored ('/'-rooted) probe query, asserting
// result equality while timing both.

// catalogTags is the root-tag universe size: with catalogChildFrac of
// the views '/'-rooted, an anchored probe's exact root partition holds
// about n·childFrac/catalogTags views.
const (
	catalogTags      = 100
	catalogChildFrac = 0.8
	catalogMaxNodes  = 10
	catalogProbeSize = 10
)

// E15: the signature-indexed catalog under load.
func expCatalog(ctx context.Context, eng *engine.Engine, seed int64) {
	w := table("E15 signature-indexed view catalog (prune, shard, batch)",
		"views", "t(register)/view", "t(candidates)", "cands", "t(select k=16)", "t(ref multiview)", "t(batch multiview)", "speedup", "union")
	for _, n := range []int{1000, 10000} {
		rng := rand.New(rand.NewSource(seed))
		views := workload.RandomCatalogViews(rng, n, catalogTags, catalogMaxNodes, catalogChildFrac)
		cat := viewstore.NewCatalog()
		startReg := time.Now()
		for _, v := range views {
			cat.Register(v.Name, &viewstore.Materialized{Expr: v.Expr})
		}
		perReg := time.Since(startReg) / time.Duration(n)
		sources := make([]rewrite.ViewSource, len(views))
		for i, v := range views {
			sources[i] = rewrite.ViewSource{Name: v.Name, View: v.Expr}
		}
		q := workload.CatalogProbeQuery(rng, 0, catalogTags, catalogProbeSize)
		dst := make([]string, 0, 4096)
		var cands []string
		tCand := timeIt(200, func() {
			var err error
			if cands, err = cat.Candidates(ctx, q, dst[:0]); err != nil {
				panic(err)
			}
		})
		tSel := timeIt(50, func() {
			if _, err := cat.SelectViews(ctx, q, 16); err != nil {
				panic(err)
			}
		})
		var ref, batch *rewrite.MultiViewResult
		tRef := timeIt(1, func() {
			var err error
			if ref, err = rewrite.MCRMultiViewRef(q, sources, rewrite.Options{Context: ctx}); err != nil {
				panic(err)
			}
		})
		tBatch := timeIt(3, func() {
			var err error
			if batch, err = rewrite.MCRMultiView(q, sources, rewrite.Options{Context: ctx}); err != nil {
				panic(err)
			}
		})
		if batch.Union.String() != ref.Union.String() {
			panic(fmt.Sprintf("batch union %s != ref union %s", batch.Union, ref.Union))
		}
		fmt.Fprintf(w, "%d\t%v\t%v\t%d\t%v\t%v\t%v\t%.1fx\t%d CRs\n",
			n, perReg, tCand, len(cands), tSel, tRef, tBatch,
			float64(tRef)/float64(tBatch), len(batch.Union.Patterns))
		if ctx.Err() != nil {
			break
		}
	}
	w.Flush()
}

// catalogMultiViewReport is the headline ablation record of the catalog
// JSON report.
type catalogMultiViewReport struct {
	Views       int     `json:"views"`
	Labeled     int     `json:"labeled"`
	UnionCRs    int     `json:"union_crs"`
	RefNsPerOp  float64 `json:"ref_ns_per_op"`
	BatchNsOp   float64 `json:"batch_ns_per_op"`
	Speedup     float64 `json:"speedup_ref_over_batch"`
	UnionsAgree bool    `json:"unions_agree"`
}

// catalogReport is the `-exp catalog -json` document, archived as
// BENCH_PR8.json and uploaded by the CI bench-smoke job.
type catalogReport struct {
	GOOS      string                 `json:"goos"`
	GOARCH    string                 `json:"goarch"`
	NumCPU    int                    `json:"num_cpu"`
	Seed      int64                  `json:"seed"`
	Kernels   []kernelResult         `json:"kernels"`
	MultiView catalogMultiViewReport `json:"multiview_10k"`
}

// runCatalogJSON measures the catalog kernels and writes one JSON
// report to stdout.
func runCatalogJSON(ctx context.Context, seed int64) error {
	report := catalogReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Seed:   seed,
	}
	add := func(r kernelResult) { report.Kernels = append(report.Kernels, r) }

	// Register throughput at 10k views, signature construction included.
	rng := rand.New(rand.NewSource(seed))
	views10k := workload.RandomCatalogViews(rng, 10000, catalogTags, catalogMaxNodes, catalogChildFrac)
	var cat10k *viewstore.Catalog
	{
		cat10k = viewstore.NewCatalog()
		i := 0
		add(measure("catalog_register_10k", len(views10k), func() {
			v := views10k[i]
			cat10k.Register(v.Name, &viewstore.Materialized{Expr: v.Expr})
			i++
		}))
	}

	sources := make([]rewrite.ViewSource, len(views10k))
	for i, v := range views10k {
		sources[i] = rewrite.ViewSource{Name: v.Name, View: v.Expr}
	}
	probe := workload.CatalogProbeQuery(rng, 0, catalogTags, catalogProbeSize)
	descProbe := tpq.MustParse("//" + workload.CatalogTag(1) + "[" + workload.CatalogTag(2) + "]")
	dst := make([]string, 0, 8192)

	// Candidate lookups at 10k: anchored (root-partition probe) and
	// unanchored (bitmap scan). Both must be allocation-free.
	lookup := func(name string, c *viewstore.Catalog, q *tpq.Pattern, iters int) {
		// Warm lazy pattern-index caches (and grow dst to its final
		// capacity) outside the measured loop.
		var err error
		if dst, err = c.Candidates(ctx, q, dst[:0]); err != nil {
			panic(err)
		}
		add(measure(name, iters, func() {
			var err error
			if dst, err = c.Candidates(ctx, q, dst[:0]); err != nil {
				panic(err)
			}
		}))
	}
	lookup("catalog_candidates_anchored_10k", cat10k, probe, 5000)
	lookup("catalog_candidates_descendant_10k", cat10k, descProbe, 5000)

	// Top-k selection at 10k.
	add(measure("catalog_select_top16_10k", 500, func() {
		if _, err := cat10k.SelectViews(ctx, probe, 16); err != nil {
			panic(err)
		}
	}))

	// Candidate lookup at 100k views — the acceptance point: at or
	// under 1ms, zero allocations.
	{
		views100k := workload.RandomCatalogViews(rng, 100000, catalogTags, catalogMaxNodes, catalogChildFrac)
		cat100k := viewstore.NewCatalog()
		for _, v := range views100k {
			cat100k.Register(v.Name, &viewstore.Materialized{Expr: v.Expr})
		}
		lookup("catalog_candidates_anchored_100k", cat100k, probe, 1000)
		lookup("catalog_candidates_descendant_100k", cat100k, descProbe, 1000)
	}

	// The headline ablation: frozen flat-scan baseline vs batched
	// pipeline over the 10k catalog, anchored probe, identical results.
	{
		var ref, batch *rewrite.MultiViewResult
		refK := measure("multiview_ref_10k", 3, func() {
			var err error
			if ref, err = rewrite.MCRMultiViewRef(probe, sources, rewrite.Options{Context: ctx}); err != nil {
				panic(err)
			}
		})
		batchK := measure("multiview_batch_10k", 10, func() {
			var err error
			if batch, err = rewrite.MCRMultiView(probe, sources, rewrite.Options{Context: ctx}); err != nil {
				panic(err)
			}
		})
		add(refK)
		add(batchK)
		report.MultiView = catalogMultiViewReport{
			Views:       len(sources),
			Labeled:     batch.Labeled,
			UnionCRs:    len(batch.Union.Patterns),
			RefNsPerOp:  refK.NsPerOp,
			BatchNsOp:   batchK.NsPerOp,
			Speedup:     refK.NsPerOp / batchK.NsPerOp,
			UnionsAgree: batch.Union.String() == ref.Union.String(),
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
