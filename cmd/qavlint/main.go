// Command qavlint runs the project's analyzer suite: the syntactic
// checks (ctxpoll, lockguard, patmut, errwrap, panicguard) and the
// dataflow-backed invariant analyzers (planfreeze, stagereg,
// exhaustive, lockorder). See internal/lint and DESIGN.md.
//
// Standalone:
//
//	qavlint ./...
//
// As a vet tool, which integrates with go vet's per-package caching:
//
//	go build -o "$(go env GOPATH)/bin/qavlint" ./cmd/qavlint
//	go vet -vettool="$(which qavlint)" ./...
package main

import (
	"os"

	"qav/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], lint.Suite))
}
