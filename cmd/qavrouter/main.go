// Command qavrouter fans a fleet of qavd replicas into one HTTP
// endpoint with health-aware failover, retries, hedging and
// per-replica circuit breakers. See internal/router for the policy and
// failure-handling machinery.
//
//	qavrouter -addr :8090 -replicas http://localhost:8080,http://localhost:8081,http://localhost:8082
//	curl -s localhost:8090/v1/rewrite -d '{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}'
//	curl -s localhost:8090/v1/cluster   # per-replica breaker/health/load state
//	curl -s localhost:8090/metrics      # router stages + per-replica attempt metrics
//
// The default policy is canonical-affinity: requests are routed by
// rendezvous hashing on the canonical pattern key, so each replica's
// rewrite cache (in-memory LRU + persistent warm tier) accumulates
// hits for its share of the keyspace, with automatic spill when the
// owner is down, draining or saturated.
//
// On SIGINT/SIGTERM the router drains: its own /healthz flips to 503,
// in-flight proxied requests finish (bounded by -drain), and the
// health probers stop.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qav/internal/obs"
	"qav/internal/router"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated qavd base URLs (required)")
	policy := flag.String("policy", "affinity", "routing policy: affinity, roundrobin or leastloaded")
	seed := flag.Int64("seed", 1, "seed for jittered durations (breaker cooldowns, retry backoff)")
	probeInterval := flag.Duration("probe-interval", time.Second, "health probe spacing per replica (jittered)")
	attemptTimeout := flag.Duration("attempt-timeout", 10*time.Second, "per-attempt deadline against a replica")
	retries := flag.Int("retries", 2, "backoff rounds after the first pass over the replicas")
	retryBackoff := flag.Duration("retry-backoff", 25*time.Millisecond, "base retry backoff (doubled per round, jittered, capped)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge idempotent requests after this delay (0 = hedging off); the tracked tail quantile raises it")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.9, "attempt-latency quantile that paces hedges")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that open a replica's breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "open-state dwell before a half-open probe (jittered)")
	drain := flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	flag.Parse()

	if *replicas == "" {
		log.Fatal("qavrouter: -replicas is required (comma-separated qavd base URLs)")
	}
	rt, err := router.New(router.Config{
		Replicas:         strings.Split(*replicas, ","),
		Policy:           *policy,
		Seed:             *seed,
		ProbeInterval:    *probeInterval,
		AttemptTimeout:   *attemptTimeout,
		Retries:          *retries,
		RetryBackoff:     *retryBackoff,
		HedgeAfter:       *hedgeAfter,
		HedgeQuantile:    *hedgeQuantile,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	if err != nil {
		log.Fatalf("qavrouter: %v", err)
	}
	obs.Publish("qavrouter", func() any { return rt.Status() })

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("qavrouter listening on %s, %d replicas, policy=%s",
		*addr, len(strings.Split(*replicas, ",")), *policy)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		rt.StartDraining()
		log.Printf("qavrouter: signal received, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("qavrouter: forced shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("qavrouter: %v", err)
		}
		rt.Close()
		log.Printf("qavrouter: stopped")
	}
}
