package qav_test

// One benchmark per experiment of the reproduction (see the experiment
// index in DESIGN.md and the recorded results in EXPERIMENTS.md).
// cmd/qavbench prints the same measurements as human-readable tables.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"qav"
	"qav/internal/chase"
	"qav/internal/constraints"
	"qav/internal/engine"
	"qav/internal/rewrite"
	"qav/internal/structjoin"
	"qav/internal/tpq"
	"qav/internal/workload"
)

// E1 (Theorem 2): the polynomial answerability test, scaling |Q| and |V|.
func BenchmarkUseEmbExistence(b *testing.B) {
	alphabet := []string{"a", "b", "c", "d"}
	for _, nq := range []int{8, 32, 128} {
		for _, nv := range []int{8, 32, 64} {
			rng := rand.New(rand.NewSource(1))
			qs := make([]*tpq.Pattern, 16)
			vs := make([]*tpq.Pattern, 16)
			for i := range qs {
				qs[i] = workload.RandomPattern(rng, alphabet, nq)
				vs[i] = workload.RandomPattern(rng, alphabet, nv)
			}
			b.Run(fmt.Sprintf("Q%d/V%d", nq, nv), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rewrite.Answerable(qs[i%len(qs)], vs[i%len(vs)])
				}
			})
		}
	}
}

// E2 (§3.2, Example 1): MCR generation on the Figure 8 family, whose
// output size is 2^n.
func BenchmarkMCRGenExponential(b *testing.B) {
	v := workload.Fig8View()
	for n := 2; n <= 7; n++ {
		q := workload.Fig8Query(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := rewrite.MCR(q, v, rewrite.Options{MaxEmbeddings: 1 << 22})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Union.Patterns) != 1<<n {
					b.Fatalf("got %d CRs, want %d", len(res.Union.Patterns), 1<<n)
				}
			}
		})
	}
}

// E3 (Theorem 5): constraint inference, scaling |S|.
func BenchmarkInference(b *testing.B) {
	for _, n := range []int{8, 32, 64, 128} {
		g := workload.RandomDAGSchema(rand.New(rand.NewSource(1)), n, 0.3)
		b.Run(fmt.Sprintf("S%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				constraints.Infer(g)
			}
		})
	}
}

// E5/E8 (Figure 12 / Lemma 4): exhaustive chase explodes on stacked
// diamond schemas; the intelligent chase stays proportional to the
// query.
func BenchmarkChase(b *testing.B) {
	q := tpq.MustParse("/x0[b0]")
	for _, levels := range []int{2, 4, 6} {
		g := workload.DiamondSchema(levels)
		sigma := constraints.Infer(g)
		scOnly := constraints.NewSet(sigma.OfKind(constraints.SC))
		v := tpq.MustParse("/x0")
		b.Run(fmt.Sprintf("exhaustive/levels%d", levels), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chase.Exhaustive(context.Background(), v, scOnly, chase.Options{MaxSteps: 1 << 20}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("intelligent/levels%d", levels), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chase.Intelligent(v, q, sigma)
			}
		})
	}
}

// E4 (Theorem 9): MCRGenSchema end to end on random schemas.
func BenchmarkMCRGenSchema(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		rng := rand.New(rand.NewSource(1))
		g := workload.RandomDAGSchema(rng, n, 0.3)
		sc := rewrite.NewSchemaContext(g)
		qs := make([]*tpq.Pattern, 16)
		vs := make([]*tpq.Pattern, 16)
		for i := range qs {
			qs[i] = workload.RandomSchemaPattern(rng, g, 8)
			vs[i] = workload.RandomSchemaPattern(rng, g, 8)
		}
		b.Run(fmt.Sprintf("S%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sc.MCRWithSchema(qs[i%len(qs)], vs[i%len(vs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E6 ([14] "substantial savings"): direct query evaluation vs applying
// the compensation to a pre-materialized view.
func BenchmarkViewAnswering(b *testing.B) {
	q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
	v := tpq.MustParse("//Trials[//Status]")
	res, err := rewrite.MCR(q, v, rewrite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, groups := range []int{1000, 10000} {
		d, err := workload.ClinicalTrialsDoc(context.Background(), rand.New(rand.NewSource(1)), groups, 10, 0.02)
		if err != nil {
			b.Fatal(err)
		}
		viewNodes := rewrite.MaterializeView(v, d)
		b.Run(fmt.Sprintf("direct/groups%d", groups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q.Evaluate(d)
			}
		})
		b.Run(fmt.Sprintf("materialize/groups%d", groups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rewrite.MaterializeView(v, d)
			}
		})
		b.Run(fmt.Sprintf("viaView/groups%d", groups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rewrite.AnswerMaterialized(context.Background(), res.CRs, d, viewNodes)
			}
		})
	}
}

// E7 ([14] "minor overhead"): the answerability test and rewriting
// generation are independent of document size; compare with
// BenchmarkViewAnswering's per-evaluation cost.
func BenchmarkOverhead(b *testing.B) {
	q := tpq.MustParse("//Trials[//Status]//Trial/Patient")
	v := tpq.MustParse("//Trials//Trial")
	b.Run("answerable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rewrite.Answerable(q, v)
		}
	})
	b.Run("mcrgen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.MCR(q, v, rewrite.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E9 (ablation): the label-driven MCRGen vs the brute-force baseline
// that enumerates every partial matching.
func BenchmarkNaiveVsMCRGen(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{"a", "b", "c"}
	qs := make([]*tpq.Pattern, 32)
	vs := make([]*tpq.Pattern, 32)
	for i := range qs {
		qs[i] = workload.RandomPattern(rng, alphabet, 6)
		vs[i] = workload.RandomPattern(rng, alphabet, 6)
	}
	b.Run("mcrgen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.MCR(qs[i%len(qs)], vs[i%len(vs)], rewrite.Options{MaxEmbeddings: 1 << 18}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.NaiveMCR(context.Background(), qs[i%len(qs)], vs[i%len(vs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Pattern evaluation itself, the substrate for everything above.
func BenchmarkEvaluate(b *testing.B) {
	q := qav.MustParseQuery("//Trials[//Status]//Trial/Patient")
	for _, groups := range []int{100, 1000} {
		d, err := workload.ClinicalTrialsDoc(context.Background(), rand.New(rand.NewSource(1)), groups, 10, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("groups%d", groups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q.Evaluate(d)
			}
		})
	}
}

// Containment via homomorphism, the decision procedure behind
// redundancy elimination.
func BenchmarkContainment(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	alphabet := []string{"a", "b", "c"}
	ps := make([]*tpq.Pattern, 64)
	for i := range ps {
		ps[i] = workload.RandomPattern(rng, alphabet, 12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpq.Contained(ps[i%len(ps)], ps[(i+1)%len(ps)])
	}
}

// E10 (§5): recursive-schema MCR on the Figure 15 family.
func BenchmarkMCRRecursive(b *testing.B) {
	v := tpq.MustParse("//a//b")
	for _, k := range []int{2, 4, 6} {
		g := workload.Fig15Schema(k)
		sc := rewrite.NewSchemaContext(g)
		q := workload.Fig15Query(k)
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sc.MCRRecursive(q, v, rewrite.Options{MaxEmbeddings: rewrite.DefaultMaxEmbeddings})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Union.Patterns) != 1<<k {
					b.Fatalf("got %d CRs, want %d", len(res.Union.Patterns), 1<<k)
				}
			}
		})
	}
}

// E11 (substrate ablation): the tree-DP evaluator vs the structural-join
// engine on a selective query.
func BenchmarkEngines(b *testing.B) {
	d, err := workload.ClinicalTrialsDoc(context.Background(), rand.New(rand.NewSource(1)), 5000, 10, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	ix := structjoin.Build(d)
	for _, expr := range []string{"//Trials[//Status]//Trial/Patient", "//Status"} {
		q := tpq.MustParse(expr)
		b.Run("treedp/"+expr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q.Evaluate(d)
			}
		})
		b.Run("structjoin/"+expr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.Evaluate(context.Background(), q)
			}
		})
	}
}

// E13 (engine layer): the cost of a rewriting through the Engine front
// door. "cold" bypasses the cache and measures the raw pipeline plus
// engine overhead; "cached" measures a cache hit; "concurrentDup" has
// every GOMAXPROCS worker request the same cold key — singleflight
// collapses the duplicates into one computation per cache reset.
func BenchmarkEngineRewrite(b *testing.B) {
	ctx := context.Background()
	q := workload.Fig8Query(5)
	v := workload.Fig8View()
	req := engine.Request{Query: q, View: v, MaxEmbeddings: rewrite.DefaultMaxEmbeddings}

	b.Run("cold", func(b *testing.B) {
		eng := engine.New(engine.Config{})
		cold := req
		cold.NoCache = true
		for i := 0; i < b.N; i++ {
			if _, err := eng.Rewrite(ctx, cold); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := engine.New(engine.Config{})
		if _, err := eng.Rewrite(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Rewrite(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrentDup", func(b *testing.B) {
		eng := engine.New(engine.Config{})
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := eng.Rewrite(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// Pattern minimization (the Amer-Yahia et al. extension).
func BenchmarkMinimize(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ps := make([]*tpq.Pattern, 32)
	for i := range ps {
		ps[i] = workload.RandomPattern(rng, []string{"a", "b"}, 14)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpq.Minimize(ps[i%len(ps)])
	}
}
