package qav_test

// Chaos suite: randomized fault injection over the full serving path.
// Each run arms a random plan on the registered injection points
// (internal/fault) and pushes requests through the HTTP handler; the
// assertions are survival properties — every request returns a JSON
// response with some status, the process neither crashes nor
// deadlocks, and no goroutines outlive the storm. A companion test
// pins that with every point disarmed the serving path is
// byte-identical across repeated cold runs, so the probes themselves
// cannot perturb results.
//
// The plan sequence is deterministic: seed and run count come from
// QAV_CHAOS_SEED / QAV_CHAOS_RUNS when set (the CI chaos job runs a
// small seed matrix), defaulting to a fixed seed and 200 runs.

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"qav/internal/engine"
	"qav/internal/fault"
	"qav/internal/leaktest"
	"qav/internal/names"
	"qav/internal/server"
	"qav/internal/workload"
)

const chaosSchema = `root Trials
Trials -> Trial*
Trial -> Status? Site*
Site -> Status?
`

// chaosEnvInt reads an integer override from the environment.
func chaosEnvInt(t *testing.T, key string, def int64) int64 {
	t.Helper()
	s := os.Getenv(key)
	if s == "" {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("%s=%q: %v", key, s, err)
	}
	return v
}

// chaosSpec is one entry of the chaos request mix; an empty method
// means POST.
type chaosSpec struct {
	method, path, body string
}

func (s chaosSpec) request() *http.Request {
	m := s.method
	if m == "" {
		m = "POST"
	}
	return httptest.NewRequest(m, s.path, strings.NewReader(s.body))
}

// chaosBodies is the request mix: schemaless rewrites (exercising
// enumerate/buildcr/contain/worker/compute/singleflight), a schema
// rewrite (exercising chase.step), a mixed batch (exercising the
// shared-computation path and, with a cache directory armed, the
// cache.persist writer), a containment check, and a ranked view
// listing (exercising catalog.lookup). Every request passes through
// server.handler.
func chaosBodies(rng *rand.Rand) []chaosSpec {
	alphabet := []string{"a", "b", "c"}
	rq := workload.RandomPattern(rng, alphabet, 4).String()
	rv := workload.RandomPattern(rng, alphabet, 4).String()
	esc := func(s string) string {
		b, _ := json.Marshal(s)
		return string(b)
	}
	return []chaosSpec{
		{"", "/v1/rewrite", `{"query":` + esc(workload.Fig8Query(6).String()) + `,"view":` + esc(workload.Fig8View().String()) + `}`},
		{"", "/v1/rewrite", `{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial","schema":` + esc(chaosSchema) + `}`},
		{"", "/v1/rewrite", `{"query":` + esc(rq) + `,"view":` + esc(rv) + `}`},
		{"", "/v1/rewrite/batch", `{"items":[{"query":` + esc(rq) + `,"view":` + esc(rv) + `},{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial","schema":` + esc(chaosSchema) + `}]}`},
		{"", "/v1/contain", `{"p":"//Trials//Trial[Status]","q":"//Trials//Trial","schema":` + esc(chaosSchema) + `}`},
		{"", "/v1/answer", `{"query":"//Trials[//Status]//Trial/Patient","view":"//Trials//Trial","document":` + esc(chaosDoc) + `}`},
		{"GET", "/v1/views?q=//Trials//Trial&k=4", ""},
	}
}

// chaosDoc is a tiny conforming document for the /v1/answer mix entry,
// exercising the plan.exec injection point end to end.
const chaosDoc = `<PharmaLab><Trials><Trial><Patient>John Doe</Patient><Status>Complete</Status></Trial><Trial><Patient>Jane Roe</Patient></Trial></Trials></PharmaLab>`

// TestChaosRandomFaultsSurviveServing is the storm: ≥200 randomized
// plans, each arming one guaranteed-rotating point (so every
// registered point is exercised) plus random extras, with random
// actions and firing probabilities, while requests flow. Survival =
// every response is JSON with an HTTP status, the suite terminates
// (no deadlock), and the deferred leak check sees every goroutine
// gone. Run under -race.
func TestChaosRandomFaultsSurviveServing(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	defer leaktest.Check(t)()
	defer fault.Disable()

	seed := chaosEnvInt(t, "QAV_CHAOS_SEED", 20260806)
	runs := int(chaosEnvInt(t, "QAV_CHAOS_RUNS", 200))
	rng := rand.New(rand.NewSource(seed))
	t.Logf("chaos: seed=%d runs=%d", seed, runs)

	// Every declared point must be registered by the serving path: a
	// rename must fail the chaos suite, not silently stop testing a
	// stage. TestFaultRegistryComplete checks the full diff; here we
	// only need the arming loop below to cover every point.
	pts := fault.Names()
	registered := make(map[string]bool, len(pts))
	for _, n := range pts {
		registered[n] = true
	}
	for _, want := range names.FaultPoints() {
		if !registered[want] {
			t.Fatalf("injection point %q not registered (have %v)", want, pts)
		}
	}

	eng := engine.New(engine.Config{
		CacheSize:     64,
		Timeout:       2 * time.Second,
		MaxEmbeddings: 1 << 16,
		CacheDir:      t.TempDir(),
	})
	defer func() {
		if err := eng.Close(); err != nil {
			t.Errorf("engine close after storm: %v", err)
		}
	}()
	h := server.NewWith(eng)
	actions := []fault.Action{fault.ActError, fault.ActPanic, fault.ActDelay, fault.ActCancel}
	probs := []float64{1, 0.5, 0.05}

	for run := 0; run < runs; run++ {
		// Rotate the guaranteed point so all points fire regardless of
		// run count; add up to two random extras for interaction
		// coverage (e.g. delay in enumerate + panic in the worker).
		plan := &fault.Plan{Seed: rng.Int63()}
		pick := map[string]bool{pts[run%len(pts)]: true}
		for i := rng.Intn(3); i > 0; i-- {
			pick[pts[rng.Intn(len(pts))]] = true
		}
		for name := range pick {
			plan.Injections = append(plan.Injections, fault.Injection{
				Point:  name,
				Action: actions[rng.Intn(len(actions))],
				Prob:   probs[rng.Intn(len(probs))],
				Delay:  time.Millisecond,
			})
		}
		if err := fault.Enable(plan); err != nil {
			t.Fatal(err)
		}

		bodies := chaosBodies(rng)
		for j := 0; j < 2; j++ {
			reqSpec := bodies[rng.Intn(len(bodies))]
			req := reqSpec.request()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req) // must not crash or hang
			if rec.Code == 0 {
				t.Fatalf("run %d: no status written for %s", run, reqSpec.path)
			}
			var out map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("run %d: non-JSON response %d %q", run, rec.Code, rec.Body.String())
			}
		}
	}
	fault.Disable()

	// After the storm the path must serve normally: drills leave no
	// poisoned cache entries or wedged state behind.
	req := httptest.NewRequest("POST", "/v1/rewrite", strings.NewReader(
		`{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-chaos rewrite = %d: %s", rec.Code, rec.Body.String())
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["answerable"] != true {
		t.Fatalf("post-chaos rewrite unhealthy: %s", rec.Body.String())
	}
}

// TestFaultRegistryComplete diffs the declared fault-point names
// (internal/names, the set the chaos plans arm) against the points the
// serving path actually registers (fault.Names — complete here because
// this test's imports pull in every instrumented package). Both
// directions matter: a point registered under an undeclared name would
// never be armed by the chaos storm, and a declared name nothing
// registers means the probe it documents was deleted or renamed.
func TestFaultRegistryComplete(t *testing.T) {
	declared := names.FaultPoints()
	got := fault.Names()
	decl := make(map[string]bool, len(declared))
	for _, n := range declared {
		decl[n] = true
	}
	reg := make(map[string]bool, len(got))
	for _, n := range got {
		reg[n] = true
	}
	for _, n := range got {
		if !decl[n] {
			t.Errorf("fault point %q registered but not declared in internal/names; the chaos suite will never arm it", n)
		}
	}
	for _, n := range declared {
		if !reg[n] {
			t.Errorf("fault point %q declared in internal/names but nothing registers it", n)
		}
	}
}

// TestChaosDisabledByteIdentical pins the zero-perturbation property:
// with every injection point disarmed, repeated cold runs (fresh
// engine, empty cache) of a fixed request set produce byte-identical
// response bodies. This is what licenses leaving the probes compiled
// into production binaries.
func TestChaosDisabledByteIdentical(t *testing.T) {
	fault.Disable()
	fixed := chaosBodies(rand.New(rand.NewSource(1)))
	var reference []string
	for round := 0; round < 3; round++ {
		h := server.NewWith(engine.New(engine.Config{CacheSize: 64, MaxEmbeddings: 1 << 16}))
		for i, spec := range fixed {
			req := spec.request()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("round %d request %d: status %d: %s", round, i, rec.Code, rec.Body.String())
			}
			if round == 0 {
				reference = append(reference, rec.Body.String())
			} else if got := rec.Body.String(); got != reference[i] {
				t.Fatalf("round %d request %d diverged:\n got %s\nwant %s", round, i, got, reference[i])
			}
		}
	}
}
