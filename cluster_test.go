package qav_test

// Cluster chaos suite: a 3-replica in-process qavd cluster behind
// internal/router, exercised with deterministic kill/restart/slow
// storms under -race. The replicas are real engine-backed servers
// (the same handlers qavd serves); the fabric is router.HandlerTransport,
// which turns SIGKILL into connect-refused errors and slowness into
// injected latency without sockets or real processes.
//
// The headline assertion is the availability contract: while at least
// one replica is healthy and the router has converged on the fleet
// state, every client-visible response is a success (or a 429 when the
// fleet is saturated — not exercised here since the test engines are
// ungated). A companion storm arms the router's own fault points
// (router.pick, router.probe, router.hedge) and asserts survival, and
// a determinism test pins that with faults disabled repeated cold runs
// are byte-identical.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qav/internal/engine"
	"qav/internal/fault"
	"qav/internal/leaktest"
	"qav/internal/router"
	"qav/internal/server"
)

// clusterSpecs is the request mix for cluster storms: all idempotent
// compute endpoints with deterministic 200 responses on a healthy
// replica.
func clusterSpecs() []chaosSpec {
	esc := func(s string) string {
		b, _ := json.Marshal(s)
		return string(b)
	}
	return []chaosSpec{
		{"", "/v1/rewrite", `{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}`},
		{"", "/v1/rewrite", `{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial","schema":` + esc(chaosSchema) + `}`},
		{"", "/v1/rewrite", `{"query":"//a[b][c]//d","view":"//a//d"}`},
		{"", "/v1/rewrite/batch", `{"items":[{"query":"//a[b]//c","view":"//a//c"},{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}]}`},
		{"", "/v1/contain", `{"p":"//Trials//Trial[Status]","q":"//Trials//Trial","schema":` + esc(chaosSchema) + `}`},
		{"", "/v1/answer", `{"query":"//Trials[//Status]//Trial/Patient","view":"//Trials//Trial","document":` + esc(chaosDoc) + `}`},
	}
}

// bootCluster starts n engine-backed replicas on a HandlerTransport
// plus a router over them. The returned stop function closes the
// router and every engine.
func bootCluster(t *testing.T, n int, tweak func(*router.Config)) (*router.Router, *router.HandlerTransport, func()) {
	t.Helper()
	ht := router.NewHandlerTransport()
	var urls []string
	var engines []*engine.Engine
	for i := 0; i < n; i++ {
		eng := engine.New(engine.Config{CacheSize: 64, MaxEmbeddings: 1 << 16, Timeout: 2 * time.Second})
		engines = append(engines, eng)
		host := fmt.Sprintf("replica-%d", i)
		ht.Register(host, server.NewService(eng).Handler())
		urls = append(urls, "http://"+host)
	}
	cfg := router.Config{
		Replicas:         urls,
		Seed:             11,
		ProbeInterval:    10 * time.Millisecond,
		AttemptTimeout:   500 * time.Millisecond,
		Retries:          2,
		RetryBackoff:     2 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		Transport:        ht,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	r, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, ht, func() {
		r.Close()
		for _, eng := range engines {
			if err := eng.Close(); err != nil {
				t.Errorf("engine close: %v", err)
			}
		}
	}
}

// clusterWait polls cond until it holds or the deadline passes.
func clusterWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("cluster did not converge: %s", what)
}

func clusterReplica(r *router.Router, name string) router.ReplicaStatus {
	for _, rs := range r.Status().Replicas {
		if rs.Name == name {
			return rs
		}
	}
	return router.ReplicaStatus{}
}

// TestClusterKillRestartSlowStorm is the availability storm: rounds of
// killing or slowing one replica while the other two stay healthy. In
// every converged state each routed request must succeed — replica
// death and slowness become failover events, never client errors. The
// breaker of the victim must open while it is gone and re-close after
// it returns.
func TestClusterKillRestartSlowStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster storm")
	}
	defer leaktest.Check(t)()
	fault.Disable()

	r, ht, stop := bootCluster(t, 3, nil)
	defer stop()

	specs := clusterSpecs()
	sawOpen := false
	for round := 0; round < 6; round++ {
		victim := fmt.Sprintf("replica-%d", round%3)
		slow := round%2 == 1
		if slow {
			// Slow far past the probe timeout: the prober times out,
			// trips the breaker, and traffic routes around the replica.
			ht.SetDelay(victim, 300*time.Millisecond)
		} else {
			ht.SetDown(victim, true)
		}
		clusterWait(t, victim+" unavailable", func() bool {
			rs := clusterReplica(r, victim)
			return rs.State == "open" && !rs.Healthy
		})
		sawOpen = true
		clusterWait(t, "survivors healthy", func() bool {
			for _, rs := range r.Status().Replicas {
				if rs.Name != victim && (rs.State != "closed" || !rs.Healthy) {
					return false
				}
			}
			return true
		})

		// With one replica dead and two healthy: zero non-429 errors.
		// The test engines are ungated, so that means every request
		// succeeds outright.
		for i, spec := range specs {
			req := spec.request()
			rec := httptest.NewRecorder()
			r.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests {
				t.Fatalf("round %d request %d (%s): client-visible error %d: %s",
					round, i, spec.path, rec.Code, rec.Body.String())
			}
			if got := rec.Header().Get("X-QAV-Replica"); got == victim {
				t.Fatalf("round %d: request served by unavailable replica %s", round, victim)
			}
		}

		// Restart/unslow the victim: the half-open probe must re-close
		// its breaker without client traffic.
		ht.SetDown(victim, false)
		ht.SetDelay(victim, 0)
		clusterWait(t, victim+" re-closed", func() bool {
			rs := clusterReplica(r, victim)
			return rs.State == "closed" && rs.Healthy
		})
	}
	if !sawOpen {
		t.Fatal("storm never opened a breaker")
	}

	// Post-storm: the cluster serves normally and /v1/cluster shows a
	// fully closed, healthy fleet with recorded breaker transitions.
	cs := r.Status()
	for _, rs := range cs.Replicas {
		if rs.State != "closed" || !rs.Healthy {
			t.Fatalf("post-storm replica %s: %+v", rs.Name, rs)
		}
		if rs.Transitions == 0 && rs.Name != "" {
			// Every replica was a victim at least once in 6 rounds.
			t.Fatalf("replica %s never recorded a breaker transition", rs.Name)
		}
	}
}

// TestClusterRouterFaultStorm arms the router's own injection points
// (pick, probe, hedge) with deterministic random plans while traffic
// flows through a healthy cluster. Survival properties only: every
// response is JSON with some status, nothing crashes or deadlocks, and
// no goroutines outlive the storm.
func TestClusterRouterFaultStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster fault storm")
	}
	defer leaktest.Check(t)()
	defer fault.Disable()

	r, _, stop := bootCluster(t, 3, func(c *router.Config) {
		c.HedgeAfter = 5 * time.Millisecond
	})
	defer stop()

	seed := chaosEnvInt(t, "QAV_CHAOS_SEED", 20260807)
	runs := int(chaosEnvInt(t, "QAV_CHAOS_RUNS", 40))
	rng := rand.New(rand.NewSource(seed))
	points := []string{"router.pick", "router.probe", "router.hedge"}
	actions := []fault.Action{fault.ActError, fault.ActPanic, fault.ActDelay, fault.ActCancel}
	specs := clusterSpecs()

	for run := 0; run < runs; run++ {
		plan := &fault.Plan{Seed: rng.Int63()}
		pick := map[string]bool{points[run%len(points)]: true}
		if rng.Intn(2) == 0 {
			pick[points[rng.Intn(len(points))]] = true
		}
		for name := range pick {
			plan.Injections = append(plan.Injections, fault.Injection{
				Point:  name,
				Action: actions[rng.Intn(len(actions))],
				Prob:   []float64{1, 0.5}[rng.Intn(2)],
				Delay:  time.Millisecond,
			})
		}
		if err := fault.Enable(plan); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			spec := specs[rng.Intn(len(specs))]
			req := spec.request()
			rec := httptest.NewRecorder()
			r.Handler().ServeHTTP(rec, req) // must not crash or hang
			if rec.Code == 0 {
				t.Fatalf("run %d: no status for %s", run, spec.path)
			}
			var out map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("run %d: non-JSON response %d %q", run, rec.Code, rec.Body.String())
			}
		}
	}
	fault.Disable()

	// The storm must leave no wedged state: traffic serves normally.
	req := httptest.NewRequest("POST", "/v1/rewrite", strings.NewReader(
		`{"query":"//Trials[//Status]//Trial","view":"//Trials//Trial"}`))
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-storm rewrite = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestClusterDisabledDeterministic pins reproducibility: with every
// fault disarmed and a fixed seed, repeated cold boots of the whole
// cluster (fresh engines, fresh router) serve byte-identical response
// bodies for a fixed request sequence under the deterministic affinity
// policy.
func TestClusterDisabledDeterministic(t *testing.T) {
	defer leaktest.Check(t)()
	fault.Disable()

	specs := clusterSpecs()
	var reference []string
	for round := 0; round < 2; round++ {
		r, _, stop := bootCluster(t, 3, nil)
		for i, spec := range specs {
			req := spec.request()
			rec := httptest.NewRecorder()
			r.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				stop()
				t.Fatalf("round %d request %d: status %d: %s", round, i, rec.Code, rec.Body.String())
			}
			if round == 0 {
				reference = append(reference, rec.Body.String())
			} else if got := rec.Body.String(); got != reference[i] {
				stop()
				t.Fatalf("round %d request %d diverged:\n got %s\nwant %s", round, i, got, reference[i])
			}
		}
		stop()
	}
}
