GO ?= go
QAVLINT := $(CURDIR)/bin/qavlint
FUZZTIME ?= 10s

.PHONY: all build test race lint qavlint fmt fuzz clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# qavlint builds the analyzer suite binary into ./bin.
qavlint:
	$(GO) build -o $(QAVLINT) ./cmd/qavlint

# lint runs gofmt, go vet, and the qavlint suite through go vet's
# -vettool protocol — the same gate CI applies.
lint: qavlint
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(QAVLINT) ./...

fmt:
	gofmt -w .

# fuzz smoke-runs every fuzz target for FUZZTIME each.
fuzz:
	$(GO) test ./internal/tpq -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/schema -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xmltree -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rewrite -run '^$$' -fuzz '^FuzzRewriteRoundTrip$$' -fuzztime $(FUZZTIME)

clean:
	rm -rf bin
