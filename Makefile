GO ?= go
QAVLINT := $(CURDIR)/bin/qavlint
FUZZTIME ?= 10s

.PHONY: all build test race lint lint-self qavlint fmt fuzz chaos cluster clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# qavlint builds the analyzer suite binary into ./bin.
qavlint:
	$(GO) build -o $(QAVLINT) ./cmd/qavlint

# lint runs gofmt, go vet, and the qavlint suite both standalone and
# through go vet's -vettool protocol — the same gate CI applies.
lint: qavlint
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(QAVLINT) ./...
	$(GO) vet -vettool=$(QAVLINT) ./...

# lint-self runs the analyzer suite's own tests (dataflow tables,
# // want testdata modules, repo-clean integration) under -race.
lint-self:
	$(GO) test -race ./internal/lint/...

fmt:
	gofmt -w .

# chaos runs the randomized fault-injection suite under the race
# detector: CHAOS_SEED/CHAOS_RUNS override the fixed defaults.
CHAOS_SEED ?= 20260806
CHAOS_RUNS ?= 200
chaos:
	QAV_CHAOS_SEED=$(CHAOS_SEED) QAV_CHAOS_RUNS=$(CHAOS_RUNS) \
		$(GO) test -race -run '^TestChaos' -v .
	$(GO) test -race -run '^TestSoakMixedLoadWithFaults$$' .

# cluster runs the multi-replica storms (kill/restart/slow rounds and
# router-fault plans against engine-backed replicas) plus the router's
# own unit suite, all under the race detector.
cluster:
	QAV_CHAOS_SEED=$(CHAOS_SEED) QAV_CHAOS_RUNS=$(CHAOS_RUNS) \
		$(GO) test -race -run '^TestCluster' -v .
	$(GO) test -race ./internal/router

# fuzz smoke-runs every fuzz target for FUZZTIME each.
fuzz:
	$(GO) test ./internal/tpq -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/schema -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xmltree -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rewrite -run '^$$' -fuzz '^FuzzRewriteRoundTrip$$' -fuzztime $(FUZZTIME)

clean:
	rm -rf bin
