package qav

import (
	"context"
	"io"
	"sync"

	"qav/internal/engine"
	"qav/internal/rewrite"
	"qav/internal/schema"
	"qav/internal/stream"
	"qav/internal/structjoin"
	"qav/internal/tpq"
	"qav/internal/viewselect"
	"qav/internal/viewstore"
	"qav/internal/xmltree"
)

// Pattern is a tree pattern query in XP{/,//,[]}: a tree of tagged
// nodes connected by child (pc) and descendant (ad) edges with one
// distinguished output node.
type Pattern = tpq.Pattern

// PatternNode is a node of a Pattern.
type PatternNode = tpq.Node

// Axis is a pattern edge type: Child ('/') or Descendant ('//').
type Axis = tpq.Axis

// Pattern edge types.
const (
	Child      = tpq.Child
	Descendant = tpq.Descendant
)

// Union is a union of tree patterns (the shape of schemaless MCRs).
type Union = tpq.Union

// Document is an XML database: a rooted labeled tree.
type Document = xmltree.Document

// Node is an element node of a Document.
type Node = xmltree.Node

// Schema is a schema graph: one node per element tag, edges labeled by
// the quantifiers 1, +, ?, *.
type Schema = schema.Graph

// ContainedRewriting is one contained rewriting R ≡ E ∘ V, carrying
// the rewriting pattern, the compensation query E, and the useful
// embedding that induced it.
type ContainedRewriting = rewrite.ContainedRewriting

// Result is the outcome of MCR generation: the irredundant union of
// contained rewritings with their compensations.
type Result = rewrite.Result

// Options bounds MCR generation (the schemaless MCR can be a union of
// exponentially many patterns).
type Options = rewrite.Options

// New constructs a single-node pattern rooted at tag with the given
// axis. The root starts as the output node; build the tree with
// PatternNode.AddChild and move the output with Pattern.SetOutput.
func New(axis Axis, tag string) *Pattern { return tpq.New(axis, tag) }

// ParseQuery parses an XPath expression in XP{/,//,[]} into a Pattern,
// e.g. "//Auction[//item]//name". The final step of the main path is
// the distinguished (answer) node.
func ParseQuery(expr string) (*Pattern, error) { return tpq.Parse(expr) }

// MustParseQuery is ParseQuery panicking on error.
func MustParseQuery(expr string) *Pattern { return tpq.MustParse(expr) }

// ParseDocument reads an XML document.
func ParseDocument(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseDocumentString reads an XML document from a string.
func ParseDocumentString(s string) (*Document, error) { return xmltree.ParseString(s) }

// ParseSchema reads a schema graph from the textual DSL:
//
//	root Auctions
//	Auctions -> Auction*
//	Auction  -> open_auction* closed_auction?
func ParseSchema(src string) (*Schema, error) { return schema.Parse(src) }

// MustParseSchema is ParseSchema panicking on error.
func MustParseSchema(src string) *Schema { return schema.MustParse(src) }

// Contained reports q ⊆ q' over all databases (decided by
// homomorphism, polynomial for this fragment).
func Contained(q, qPrime *Pattern) bool { return tpq.Contained(q, qPrime) }

// Equivalent reports q ≡ q'.
func Equivalent(q, qPrime *Pattern) bool { return tpq.Equivalent(q, qPrime) }

// Answerable reports whether q is answerable using v without a schema,
// i.e. whether a maximal contained rewriting exists. Polynomial time
// (Theorem 2 of the paper).
func Answerable(q, v *Pattern) bool { return rewrite.Answerable(q, v) }

// Engine is the concurrency-safe front door to the whole pipeline: it
// owns the rewrite cache (with singleflight deduplication of concurrent
// identical requests), per-schema constraint contexts, and registered
// materialized views, and threads a context.Context through rewriting
// so callers can cancel exponential enumerations. The HTTP server, the
// CLI, and the benchmarks all run on an Engine; use one directly for
// long-lived embedding.
type Engine = engine.Engine

// EngineConfig bounds an Engine (cache capacity, per-request deadline,
// enumeration budget).
type EngineConfig = engine.Config

// EngineRequest is a parsed rewriting request for Engine.Rewrite and
// Engine.AnswerDoc.
type EngineRequest = engine.Request

// NewEngine returns an Engine with the given bounds; the zero Config
// picks sensible defaults.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// defaultEngine backs the package-level convenience functions. NoCache
// requests keep their fresh-result semantics: callers may mutate what
// they get back.
var defaultEngine = sync.OnceValue(func() *Engine { return engine.New(engine.Config{}) })

// Rewrite computes the maximal contained rewriting of q using v without
// a schema (Algorithm MCRGen). The result's Union is empty when q is
// not answerable using v.
func Rewrite(q, v *Pattern) (*Result, error) {
	return defaultEngine().Rewrite(context.Background(), engine.Request{Query: q, View: v, NoCache: true})
}

// RewriteWithOptions is Rewrite with an explicit enumeration budget and
// an optional Options.Context for cancellation.
func RewriteWithOptions(q, v *Pattern, opts Options) (*Result, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return defaultEngine().Rewrite(ctx, engine.Request{
		Query: q, View: v, MaxEmbeddings: opts.MaxEmbeddings, NoCache: true,
	})
}

// MaterializeView evaluates v over d, returning the view result nodes
// (whose subtrees form the materialized view).
func MaterializeView(v *Pattern, d *Document) []*Node {
	return rewrite.MaterializeView(v, d)
}

// AnswerUsingView answers a query through its contained rewritings by
// materializing the view once and applying each compensation query to
// the view forest. The result equals evaluating the rewriting union on
// the document directly. The context cancels answering over a large
// materialization.
func AnswerUsingView(ctx context.Context, crs []*ContainedRewriting, v *Pattern, d *Document) ([]*Node, error) {
	return rewrite.AnswerUsingView(ctx, crs, v, d)
}

// SchemaRewriter answers queries using views in the presence of a
// schema. Constraint inference runs once at construction (O(|S|³),
// Theorem 5) and is reused across rewritings.
type SchemaRewriter struct {
	sc *rewrite.SchemaContext
}

// NewSchemaRewriter infers the schema's constraints and returns a
// rewriter. Contexts are shared through the package's default engine,
// so constructing two rewriters for equal schemas infers once.
func NewSchemaRewriter(s *Schema) *SchemaRewriter {
	return &SchemaRewriter{sc: defaultEngine().SchemaContext(s)}
}

// Answerable reports whether q is answerable using v under the schema
// (Theorem 7), in polynomial time.
func (r *SchemaRewriter) Answerable(q, v *Pattern) bool {
	return r.sc.AnswerableWithSchema(q, v)
}

// Rewrite computes the MCR of q using v under a recursion-free schema
// (Algorithm MCRGenSchema): at most one contained rewriting, in
// polynomial time (Theorems 8 and 9).
func (r *SchemaRewriter) Rewrite(q, v *Pattern) (*Result, error) {
	return r.sc.MCRWithSchema(q, v)
}

// RewriteRecursive computes the MCR of q using v under a possibly
// recursive schema (§5 of the paper); the result may be a union of
// several contained rewritings.
func (r *SchemaRewriter) RewriteRecursive(q, v *Pattern, opts Options) (*Result, error) {
	return r.sc.MCRRecursive(q, v, opts)
}

// Contained reports schema-relative containment q ⊆_S q', decided via
// the chase (Theorem 6).
func (r *SchemaRewriter) Contained(q, qPrime *Pattern) bool {
	return r.sc.SContained(q, qPrime)
}

// Equivalent reports q ≡_S q'.
func (r *SchemaRewriter) Equivalent(q, qPrime *Pattern) bool {
	return r.sc.SEquivalent(q, qPrime)
}

// MaterializedView is a stored view result: the forest of answer
// subtrees a source ships to a mediator, detached from the source
// database.
type MaterializedView = viewstore.Materialized

// ShipView evaluates the view on the source database and extracts the
// result forest — what an autonomous source exports in the paper's
// information-integration scenario.
func ShipView(v *Pattern, d *Document) *MaterializedView {
	return viewstore.Materialize(v, d)
}

// ReadShippedView parses a materialized view previously serialized with
// MaterializedView.Write.
func ReadShippedView(r io.Reader) (*MaterializedView, error) {
	return viewstore.Read(r)
}

// DocumentIndex is an inverted element index supporting structural-join
// evaluation of patterns — an alternative engine to Pattern.Evaluate
// that is profitable when the pattern's tags are selective.
type DocumentIndex = structjoin.Index

// BuildIndex indexes a document for structural-join evaluation.
func BuildIndex(d *Document) *DocumentIndex { return structjoin.Build(d) }

// ViewSource names one source's view for multi-view rewriting.
type ViewSource = rewrite.ViewSource

// MultiViewResult is the global MCR over a set of views.
type MultiViewResult = rewrite.MultiViewResult

// RewriteMultiView computes the maximal contained rewriting of q over a
// SET of views: the irredundant union of every view's contained
// rewritings — the full information-integration setting, where each
// autonomous source exposes one view.
func RewriteMultiView(q *Pattern, views []ViewSource, opts Options) (*MultiViewResult, error) {
	return rewrite.MCRMultiView(q, views, opts)
}

// StreamAnswer identifies one answer from streaming evaluation.
type StreamAnswer = stream.Answer

// EvaluateStream runs a pattern over an XML byte stream in a single
// SAX-style pass, without materializing the document: memory is
// proportional to document depth, not size. Answer indexes agree with
// the in-memory parser's preorder node indexes. The context is polled
// as the stream is consumed, so evaluation over an unbounded input can
// be cancelled.
func EvaluateStream(ctx context.Context, r io.Reader, p *Pattern) ([]StreamAnswer, error) {
	return stream.Evaluate(ctx, r, p)
}

// ViewWorkload is a weighted set of queries used for view selection.
type ViewWorkload = viewselect.Workload

// ViewSelection is the outcome of greedy view selection.
type ViewSelection = viewselect.Selection

// CandidateViews derives candidate views from a query workload (path
// prefixes and re-distinguished queries).
func CandidateViews(queries []*Pattern) []*Pattern {
	return viewselect.Candidates(queries)
}

// SelectViews greedily picks up to k views to materialize for the
// workload, preferring views that answer queries equivalently over
// merely-contained coverage. Selection runs one rewriting check per
// (query, candidate) pair, so the context bounds a large workload.
func SelectViews(ctx context.Context, w ViewWorkload, candidates []*Pattern, k int) (*ViewSelection, error) {
	return viewselect.Greedy(ctx, w, candidates, k)
}

// Minimize returns the unique minimal pattern equivalent to p
// (Amer-Yahia-style branch elimination). The input is not modified.
func Minimize(p *Pattern) *Pattern { return tpq.Minimize(p) }

// Compose builds the rewriting query E ∘ V from a compensation query E
// (rooted at the view output's tag) and a view V.
func Compose(e, v *Pattern) (*Pattern, error) { return tpq.Compose(e, v) }

// Counterexample returns a witness database separating q from q' when
// q ⊄ q': a document D and a node in q(D) \ q'(D). ok is false when
// the containment holds (or the patterns contain wildcards).
func Counterexample(q, qPrime *Pattern) (d *Document, witness *Node, ok bool) {
	return tpq.Counterexample(q, qPrime)
}

// EquivalentRewriting decides the classical QAV formulation: is there a
// compensation E with E ∘ V ≡ Q? Returns the rewriting if so.
func EquivalentRewriting(q, v *Pattern, opts Options) (*ContainedRewriting, bool, error) {
	return rewrite.EquivalentRewriting(q, v, opts)
}

// EquivalentRewriting is the schema-relative version of the package
// function: E ∘ V ≡_S Q.
func (r *SchemaRewriter) EquivalentRewriting(q, v *Pattern, opts Options) (*ContainedRewriting, bool, error) {
	return r.sc.EquivalentRewriting(q, v, opts)
}
